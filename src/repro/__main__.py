"""Command-line interface: tune an operator without writing code.

Examples::

    python -m repro conv2d --device V100 --in-channel 256 --out-channel 512 \
        --size 28 --kernel 3 --trials 40
    python -m repro gemm --device XeonE5-2699v4 --n 1024 --k 1024 --m 1024
    python -m repro conv2d --device VU9P --size 14 --save tuned.json
    python -m repro conv2d --trials 200 --checkpoint run.ckpt --resume
    python -m repro gemm --workers 4 --cache-dir ~/.repro-cache
    python -m repro gemm --lint --prune-space
    python -m repro gemm --surrogate --screen-ratio 0.15
    python -m repro gemm --workers 4 --cluster --straggler-pct 90
    python -m repro lint --device V100 --sample 400
    python -m repro lint --target cpu --sample 200
    python -m repro gemm --tensorize --device XeonE5-2699v4
    python -m repro selfcheck --tensorize
    python -m repro selfcheck --faults
    python -m repro selfcheck --parallel
    python -m repro selfcheck --lint
    python -m repro selfcheck --surrogate
    python -m repro selfcheck --cluster
    python -m repro submit --store /tmp/svc --tenant alice --op gemm --n 256
    python -m repro serve --store /tmp/svc
    python -m repro status --store /tmp/svc
    python -m repro lookup --store /tmp/svc --op gemm --n 256 --enqueue
    python -m repro selfcheck --serve
    python -m repro tune-network --network yolo-v1 --store /tmp/svc --trials 25
    python -m repro tune-network --network overfeat --uniform

Exit codes: 0 on success; nonzero on any failure (no schedule found, a
selfcheck verdict of FAILED, a rejected submission, a lookup miss, a
missing service store, or a serve pass that left jobs failed or
quarantined).
"""

from __future__ import annotations

import argparse
import sys

from . import optimize
from .model import DEVICES
from .ops import conv2d_compute, gemm_compute, gemm_int8_compute, gemv_compute
from .runtime import FaultInjector, MeasureConfig
from .utils import save_schedule


def build_parser() -> argparse.ArgumentParser:
    """The repro command-line argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="FlexTensor reproduction: tune a tensor operator for a "
                    "simulated device.",
    )
    parser.add_argument("operator",
                        choices=["conv2d", "gemm", "gemv", "lint", "selfcheck",
                                 "serve", "submit", "status", "lookup",
                                 "tune-network"])
    parser.add_argument("--device", default="V100", choices=sorted(DEVICES))
    parser.add_argument("--trials", type=int, default=40)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--method", default="q",
                        choices=["q", "p", "random-walk", "random-sample"])
    parser.add_argument("--save", help="write the tuned schedule to a JSON file")
    parser.add_argument("--show-code", action="store_true",
                        help="print the generated Python kernel")
    parser.add_argument("--checkpoint",
                        help="JSONL checkpoint file for crash-safe tuning")
    parser.add_argument("--resume", action="store_true",
                        help="resume from the newest checkpoint snapshot")
    parser.add_argument("--faults", action="store_true",
                        help="selfcheck only: inject compile errors, hangs "
                             "and flaky measurements into the run")
    parser.add_argument("--workers", type=int, default=1,
                        help="parallel evaluation workers (1 = exact "
                             "bit-reproducible serial path)")
    parser.add_argument("--cache-dir",
                        help="directory of the persistent cross-run "
                             "evaluation cache")
    parser.add_argument("--parallel", action="store_true",
                        help="selfcheck only: run the smoke tuners through "
                             "the 4-worker batched engine")
    parser.add_argument("--lint", action="store_true",
                        help="tune: statically reject illegal points at zero "
                             "measurement cost; selfcheck: run the linter "
                             "soundness smoke plus ruff/mypy when installed")
    parser.add_argument("--prune-space", action="store_true",
                        help="drop knob values that alone violate a device "
                             "limit before tuning starts")
    parser.add_argument("--surrogate", action="store_true",
                        help="tune: screen candidates through an online "
                             "learned cost model so only the most promising "
                             "fraction is actually measured; selfcheck: run "
                             "the surrogate rank-quality smoke")
    parser.add_argument("--screen-ratio", type=float, default=0.25,
                        help="fraction of each ranked candidate batch "
                             "forwarded to real measurement with --surrogate")
    parser.add_argument("--cluster", action="store_true",
                        help="tune: supervise the measurement workers "
                             "(heartbeats, leases, speculative re-execution, "
                             "health circuit breakers); selfcheck: run the "
                             "chaos-determinism smoke against seeded node "
                             "faults")
    parser.add_argument("--straggler-pct", type=float, default=None,
                        help="percentile of recent lease durations beyond "
                             "which a running lease is speculatively "
                             "re-executed (with --cluster; default 95)")
    parser.add_argument("--serve", action="store_true",
                        help="selfcheck only: run the tuning-service "
                             "crash-recovery parity smoke (submit jobs from "
                             "two tenants, hard-kill the daemon mid-run, "
                             "restart, assert bit-identical outcomes)")
    parser.add_argument("--store", default=".repro-serve",
                        help="serve/submit/status/lookup: the service store "
                             "directory (job WAL, checkpoints, records, "
                             "eval cache)")
    parser.add_argument("--tenant", default="anonymous",
                        help="submit/lookup: tenant the job is billed to")
    parser.add_argument("--op", default="gemm",
                        choices=["conv2d", "gemm", "gemv"],
                        help="submit/lookup: operator of the workload")
    parser.add_argument("--priority", type=int, default=1, choices=[0, 1, 2],
                        help="submit: priority lane (0=interactive, 1=batch, "
                             "2=background)")
    parser.add_argument("--ttl", type=float, default=None,
                        help="submit: job TTL in simulated seconds")
    parser.add_argument("--slice-trials", type=int, default=None,
                        help="serve/tune-network: trials per scheduling "
                             "slice (preemption grain; default: serve 2, "
                             "tune-network the scheduler's own default)")
    parser.add_argument("--max-slices", type=int, default=None,
                        help="serve: stop after this many slices (default: "
                             "run until idle)")
    parser.add_argument("--max-queue", type=int, default=64,
                        help="serve/submit: global bound on active jobs")
    parser.add_argument("--max-crashes", type=int, default=3,
                        help="serve: crashes before a job is quarantined")
    parser.add_argument("--enqueue", action="store_true",
                        help="lookup: enqueue a tuning job on a miss")
    parser.add_argument("--network", default="yolo-v1",
                        choices=["yolo-v1", "overfeat"],
                        help="tune-network: which §6.6 network to tune")
    parser.add_argument("--uniform", action="store_true",
                        help="tune-network: flat identical per-layer budgets "
                             "instead of the gain-driven task scheduler")
    parser.add_argument("--sample", type=int, default=400,
                        help="lint only: random points sampled per schedule "
                             "space")
    parser.add_argument("--target", default=None,
                        choices=["gpu", "cpu", "fpga"],
                        help="lint only: lint for this device family "
                             "(overrides --device with the family's "
                             "reference device)")
    parser.add_argument("--tensorize", action="store_true",
                        help="tune: add the tensorize knob when a registered "
                             "intrinsic matches the computation; selfcheck: "
                             "run the gemm-int8 match-and-parity smoke")
    parser.add_argument("--lint-records", action="store_true",
                        help="lint only: print every diagnostic, not just "
                             "the per-rule summary")
    # conv2d shape
    parser.add_argument("--batch", type=int, default=1)
    parser.add_argument("--in-channel", type=int, default=256)
    parser.add_argument("--out-channel", type=int, default=512)
    parser.add_argument("--size", type=int, default=28, help="height = width")
    parser.add_argument("--kernel", type=int, default=3)
    parser.add_argument("--stride", type=int, default=1)
    parser.add_argument("--padding", type=int, default=None)
    # gemm/gemv shape
    parser.add_argument("--n", type=int, default=1024)
    parser.add_argument("--k", type=int, default=1024)
    parser.add_argument("--m", type=int, default=1024)
    return parser


def build_operator(args):
    """Instantiate the requested operator from parsed arguments."""
    if args.operator == "conv2d":
        padding = args.padding if args.padding is not None else args.kernel // 2
        return conv2d_compute(
            args.batch, args.in_channel, args.size, args.size,
            args.out_channel, args.kernel, stride=args.stride, padding=padding,
        )
    if args.operator == "gemm":
        return gemm_compute(args.n, args.k, args.m)
    return gemv_compute(args.n, args.k)


#: Reference device of each lowering target for ``lint --target``.
_TARGET_DEVICE = {"gpu": "V100", "cpu": "XeonE5-2699v4", "fpga": "VU9P"}


def lint_command(args) -> int:
    """Lint random samples of the gemm and conv2d schedule spaces for the
    chosen device and print per-rule diagnostic counts (see docs/lint.md).

    ``--target`` lints a device family instead of a named device; with it,
    on cpu and gpu, the sample also covers a tensorize-enabled int8 gemm
    space so the TEN rules (docs/tensorize.md) are exercised.  (Without
    ``--target`` the workload list is unchanged, keeping default output
    stable for existing scripts.)
    """
    import numpy as np

    from .analysis import RULES, ScheduleLinter
    from .model import target_of
    from .space import build_space

    device = DEVICES[args.device]
    if args.target is not None and target_of(device) != args.target:
        device = DEVICES[_TARGET_DEVICE[args.target]]
    target = target_of(device)
    padding = args.padding if args.padding is not None else args.kernel // 2
    workloads = [
        ("gemm", gemm_compute(args.n, args.k, args.m), False),
        ("conv2d", conv2d_compute(
            args.batch, args.in_channel, args.size, args.size,
            args.out_channel, args.kernel, stride=args.stride, padding=padding,
        ), False),
    ]
    if args.target in ("cpu", "gpu"):
        workloads.append(
            ("gemm-int8", gemm_int8_compute(args.n, args.k, args.m), True)
        )
    rng = np.random.default_rng(args.seed)
    total_illegal = 0
    for name, output, tensorize in workloads:
        space = build_space(output, target, tensorize=tensorize)
        linter = ScheduleLinter(space.op, target, device)
        sample = min(args.sample, space.size)
        counts: dict = {}
        illegal = warned = 0
        for _ in range(sample):
            point = space.random_point(rng)
            diagnostics = linter.lint(space.decode(point))
            if any(d.severity == "error" for d in diagnostics):
                illegal += 1
            elif diagnostics:
                warned += 1
            for d in diagnostics:
                counts[d.rule] = counts.get(d.rule, 0) + 1
                if args.lint_records:
                    print(f"  {name} point {point}: {d}")
        total_illegal += illegal
        print(f"{name}: space={space.size} sampled={sample} "
              f"illegal={illegal} warned={warned} clean={sample - illegal - warned}")
        for rule in sorted(counts):
            rule_name, severity, _ = RULES[rule]
            print(f"  {rule} {rule_name:<20} {severity:<5} x{counts[rule]}")
    print(f"\n{total_illegal} statically illegal points found "
          f"(rejected at zero cost when tuning with --lint)")
    return 0


def lint_smoke(args) -> int:
    """``selfcheck --lint``: prove the linter sound against the model on
    smoke workloads, then run ruff/mypy if (and only if) they are installed."""
    import shutil
    import subprocess

    import numpy as np

    from .analysis import ScheduleLinter
    from .model import INVALID_TIME, model_for, target_of
    from .schedule import lower
    from .space import build_space

    device = DEVICES[args.device]
    target = target_of(device)
    model = model_for(device)
    # Shapes big enough that some sampled points genuinely bust device
    # budgets — a smoke with zero rejections would prove nothing.
    workloads = [
        ("gemm", gemm_compute(256, 256, 256)),
        ("conv2d", conv2d_compute(1, 32, 16, 16, 64, 3, padding=1, name="smoke")),
    ]
    rng = np.random.default_rng(args.seed)
    unsound = 0
    for name, output in workloads:
        space = build_space(output, target)
        linter = ScheduleLinter(space.op, target, device)
        rejected = 0
        for _ in range(200):
            config = space.decode(space.random_point(rng))
            if not linter.errors(config):
                continue
            rejected += 1
            try:
                seconds = model.estimate_seconds(lower(output, config, target))
            except Exception:
                continue  # lowering failure: the rejection is justified
            if seconds < INVALID_TIME:
                unsound += 1
        verdict = "ok" if unsound == 0 else f"UNSOUND x{unsound}"
        print(f"{name:>13}: {verdict}  ({rejected}/200 sampled points rejected)")

    lint_paths = [
        "src/repro/analysis", "src/repro/schedule",
        "src/repro/learn", "src/repro/explore/surrogate.py",
        "src/repro/ir", "src/repro/model",
    ]
    for tool, cmd in (
        ("ruff", ["ruff", "check", *lint_paths]),
        ("mypy", ["mypy", *lint_paths]),
    ):
        if shutil.which(tool) is None:
            print(f"{tool:>13}: skipped (not installed)")
            continue
        proc = subprocess.run(cmd, capture_output=True, text=True)
        print(f"{tool:>13}: " + ("ok" if proc.returncode == 0 else "FAILED"))
        if proc.returncode != 0:
            print(proc.stdout or proc.stderr)
            return 1
    print("lint selfcheck " + ("passed" if unsound == 0 else "FAILED"))
    return 1 if unsound else 0


def tensorize_smoke(args) -> int:
    """``selfcheck --tensorize``: the intrinsic tensorization smoke.

    1. ``dot4_vnni`` statically matches int8 gemm on cpu;
    2. an accepted tensorization executes bit-identically to the same
       schedule without the intrinsic (interpreter and generated kernel);
    3. over sampled tensorized configs, every TEN rejection is a lowering
       failure and every acceptance lowers — the proof-carrying contract;
    4. the model bills a legal tensorization strictly cheaper than the
       identical scalar schedule.
    """
    import numpy as np

    from .analysis import matching_intrinsics, tensorize_rejections
    from .codegen import execute_scheduled, random_inputs, run_generated
    from .model import XEON_E5_2699V4, model_for
    from .schedule import LoweringError, NodeConfig, lower
    from .space import build_space

    failures = 0
    output = gemm_int8_compute(64, 64, 64, name="tz_smoke")
    matched = matching_intrinsics(output.op, "cpu")
    ok = matched == ("dot4_vnni",)
    print(f"{'match':>13}: {'ok' if ok else 'FAILED'}  "
          f"matching_intrinsics(gemm-int8, cpu) = {matched}")
    failures += not ok

    small = gemm_int8_compute(8, 8, 8, name="tz_parity")
    config = NodeConfig(
        spatial_factors=((1, 2, 4), (1, 2, 4)), reduce_factors=((2, 4),),
        reorder=0, vectorize=False, tensorize="dot4_vnni",
    )
    tensorized = lower(small, config, "cpu")
    plain = lower(small, config.with_(tensorize=""), "cpu")
    inputs = {
        name: np.round(8 * array)
        for name, array in random_inputs(small, seed=args.seed).items()
    }
    expected = execute_scheduled(plain, inputs)
    parity = (
        np.array_equal(execute_scheduled(tensorized, inputs), expected)
        and np.array_equal(run_generated(tensorized, inputs), expected)
    )
    print(f"{'parity':>13}: {'ok' if parity else 'FAILED'}  "
          "(interpreter + generated kernel, bit-exact)")
    failures += not parity

    space = build_space(output, "cpu", tensorize=True)
    rng = np.random.default_rng(args.seed)
    accepted = rejected = broken = 0
    for _ in range(120):
        cfg = space.decode(space.random_point(rng)).with_(tensorize="dot4_vnni")
        rejections = tensorize_rejections(output.op, cfg, "cpu")
        try:
            lower(output, cfg, "cpu")
            lowered = True
        except LoweringError:
            lowered = False
        rejected += bool(rejections)
        accepted += not rejections
        broken += lowered == bool(rejections)
    print(f"{'proofs':>13}: {'ok' if broken == 0 else f'FAILED x{broken}'}  "
          f"({accepted} accepted, {rejected} rejected of 120 sampled)")
    failures += broken > 0

    model = model_for(XEON_E5_2699V4)
    billing_cfg = NodeConfig(
        spatial_factors=((8, 4, 2), (8, 4, 2)), reduce_factors=((16, 4),),
        reorder=0, vectorize=False, fuse_levels=2,
    )
    scalar_s = model.estimate_seconds(lower(output, billing_cfg, "cpu"))
    tz_s = model.estimate_seconds(
        lower(output, billing_cfg.with_(tensorize="dot4_vnni"), "cpu")
    )
    ok = tz_s < scalar_s
    print(f"{'billing':>13}: {'ok' if ok else 'FAILED'}  "
          f"({scalar_s * 1e6:.1f} us scalar vs {tz_s * 1e6:.1f} us tensorized)")
    failures += not ok

    print("tensorize selfcheck "
          + ("passed" if failures == 0 else f"FAILED ({failures})"))
    return 1 if failures else 0


def surrogate_smoke(args) -> int:
    """``selfcheck --surrogate``: fit the learned cost model on sampled
    points of the smoke workload and require positive rank correlation
    (Spearman) on a held-out slice — proof the featurization carries
    signal before anyone trusts it to screen a real run."""
    import numpy as np

    from .explore import SurrogateScreen, spearman
    from .graph import get_graph
    from .model import target_of
    from .runtime import Evaluator
    from .space import build_space

    device = DEVICES[args.device]
    output = conv2d_compute(1, 8, 8, 8, 16, 3, padding=1, name="smoke")
    graph = get_graph(output)
    space = build_space(graph, target_of(device))
    evaluator = Evaluator(graph, device, space=space)
    rng = np.random.default_rng(args.seed)
    points, seen = [], set()
    while len(points) < 80:
        point = space.random_point(rng)
        if point not in seen:
            seen.add(point)
            points.append(point)
    labelled = [(p, evaluator.evaluate(p)) for p in points]
    train, held_out = labelled[:60], labelled[60:]

    screen = SurrogateScreen(space, min_train=len(train), seed=args.seed)
    for point, performance in train:
        screen.observe(point, performance)
    predicted = screen.predict([p for p, _ in held_out])
    actual = [performance for _, performance in held_out]
    correlation = spearman([float(s) for s in predicted], actual)
    ok = screen.ready and correlation > 0
    print(f"    surrogate: trained on {len(train)} points, "
          f"{len(held_out)} held out")
    print(f"  correlation: {correlation:.3f} (Spearman, held-out slice)")
    print("surrogate selfcheck " + ("passed" if ok else "FAILED"))
    return 0 if ok else 1


def cluster_smoke(args) -> int:
    """``selfcheck --cluster``: chaos-determinism smoke of the supervised
    measurement cluster.

    1. Every tuner must complete a short run through a 4-worker
       supervised cluster under seeded node faults (crashes, stale
       heartbeats, slow nodes, flaky nodes).
    2. A chaos run that fatally kills all but one worker mid-run must
       report the same best schedule as the fault-free clustered run at
       equal trial count — node faults may change timing and health,
       never results (the cluster determinism contract).
    """
    from .runtime import ClusterConfig, NodeFaultInjector

    output = conv2d_compute(1, 8, 8, 8, 16, 3, padding=1, name="smoke")
    device = DEVICES[args.device]
    trials = min(args.trials, 5)
    workers = 4
    config = ClusterConfig(workers=workers)
    chaos = NodeFaultInjector(
        crash_rate=0.05, stale_rate=0.05, slow_rate=0.1, flaky_rate=0.1,
        seed=args.seed,
    )
    failures = 0
    for method in ("q", "p", "random-walk", "random-sample"):
        result = optimize(
            output, device, trials=trials, method=method, seed=args.seed,
            workers=workers, cluster=config, node_faults=chaos,
            straggler_pct=args.straggler_pct,
        )
        c = result.tuning.cluster
        verdict = "ok" if result.found else "FAILED"
        if not result.found:
            failures += 1
        print(f"{method:>13}: {verdict}  best={result.gflops:8.1f} GFLOPS  "
              f"[leases={c['num_leases']} reassigned={c['num_reassigned']} "
              f"speculative={c['num_speculative']} trips={c['num_breaker_trips']}]")

    # Chaos parity: fault-free cluster vs. a cluster whose workers 1-3
    # are fatally killed a few leases in — identical best schedule.
    clean = optimize(
        output, device, trials=trials, method="q", seed=args.seed,
        workers=workers, cluster=ClusterConfig(workers=workers),
    )
    doomed = optimize(
        output, device, trials=trials, method="q", seed=args.seed,
        workers=workers, cluster=ClusterConfig(workers=workers),
        node_faults=NodeFaultInjector(
            seed=args.seed, dead_after={1: 3, 2: 3, 3: 3},
        ),
    )
    parity = (
        doomed.tuning.best_point == clean.tuning.best_point
        and doomed.tuning.best_performance == clean.tuning.best_performance
        and doomed.tuning.num_measurements == clean.tuning.num_measurements
    )
    alive = doomed.tuning.cluster["alive"]
    print(f"{'chaos parity':>13}: {'ok' if parity else 'FAILED'}  "
          f"({alive}/{workers} workers survived; best "
          f"{doomed.gflops:.1f} vs {clean.gflops:.1f} GFLOPS)")
    if not parity:
        failures += 1
    print("cluster selfcheck "
          + ("passed" if failures == 0 else f"FAILED ({failures})"))
    return 1 if failures else 0


def _serve_params(args) -> dict:
    """Workload parameters of ``--op`` from the shared shape arguments."""
    if args.op == "conv2d":
        padding = args.padding if args.padding is not None else args.kernel // 2
        return {
            "batch": args.batch, "in_channel": args.in_channel,
            "height": args.size, "width": args.size,
            "out_channel": args.out_channel, "kernel": args.kernel,
            "stride": args.stride, "padding": padding,
        }
    if args.op == "gemm":
        return {"n": args.n, "k": args.k, "m": args.m}
    return {"n": args.n, "k": args.k}


def _serve_service(args, require_store: bool = False):
    from pathlib import Path

    from .serve import ServeConfig, TuningService

    if require_store and not Path(args.store).exists():
        print(f"no service store at {args.store}")
        return None
    config = ServeConfig(
        slice_trials=2 if args.slice_trials is None else args.slice_trials,
        workers=max(1, args.workers),
        max_queue=args.max_queue,
        max_crashes=args.max_crashes,
    )
    return TuningService(args.store, config)


def serve_command(args) -> int:
    """Drive the scheduler loop until idle (or ``--max-slices``); exits
    nonzero when any job ended FAILED or QUARANTINED this pass."""
    from .serve import JobState

    service = _serve_service(args, require_store=True)
    if service is None:
        return 1
    if service.recovered_jobs:
        print(f"recovered {len(service.recovered_jobs)} in-flight job(s) "
              f"from the WAL: {', '.join(service.recovered_jobs)}")
    executed = service.run(max_slices=args.max_slices)
    stats = service.stats()
    print(service.status_table())
    print(f"\n{executed} slices run, clock {stats['clock']:.1f}s, "
          f"{stats['records']} records, states {stats['by_state']}")
    unhealthy = service.store.by_state(JobState.FAILED, JobState.QUARANTINED)
    for job in unhealthy:
        print(f"unhealthy: {job.job_id} {job.state.value} ({job.reason})")
    return 1 if unhealthy else 0


def submit_command(args) -> int:
    """Submit one tuning job; exits nonzero when admission rejects it."""
    from .serve import JobState

    service = _serve_service(args)
    job = service.submit(
        args.tenant, args.op, _serve_params(args), args.device,
        trials=args.trials, seed=args.seed, method=args.method,
        priority=args.priority, ttl_seconds=args.ttl,
    )
    print(f"{job.job_id}: {job.state.value}"
          + (f" ({job.reason})" if job.reason else ""))
    return 0 if job.state is JobState.ADMITTED else 1


def status_command(args) -> int:
    """Print the job table and service counters from the WAL."""
    service = _serve_service(args, require_store=True)
    if service is None:
        return 1
    print(service.status_table())
    stats = service.stats()
    print(f"\nclock {stats['clock']:.1f}s  active {stats['active']}  "
          f"records {stats['records']}  states {stats['by_state']}")
    return 0


def lookup_command(args) -> int:
    """Answer (op, shape, device) from the record book; exits 0 on a
    hit, nonzero on a miss (optionally enqueueing a tuning job)."""
    service = _serve_service(args, require_store=True)
    if service is None:
        return 1
    params = _serve_params(args)
    record = service.lookup(
        args.op, params, args.device, tenant=args.tenant,
        enqueue=args.enqueue, trials=args.trials, seed=args.seed,
    )
    if record is not None:
        print(f"hit: {record.key} -> {record.gflops:.1f} GFLOPS "
              f"({record.trials} trials, seed {record.seed})")
        return 0
    print(f"miss: {args.op}{params}@{args.device}"
          + (" (tuning job enqueued)" if args.enqueue else ""))
    return 1


def tune_network_command(args) -> int:
    """Tune a whole §6.6 network through the task scheduler.

    Records and the evaluation cache land in the ``--store`` directory
    using the serve layout, so ``python -m repro lookup`` (and the serve
    read path) answer queries about network layers tuned here.
    """
    from pathlib import Path

    from .nn import overfeat, tune_network, yolo_v1
    from .serve.service import EVALCACHE_DIRNAME, RECORDS_FILENAME

    network = {"yolo-v1": yolo_v1, "overfeat": overfeat}[args.network](args.batch)
    device = DEVICES[args.device]
    store = Path(args.store)
    store.mkdir(parents=True, exist_ok=True)
    result = tune_network(
        network, device, trials=args.trials, method=args.method, seed=args.seed,
        allocate=not args.uniform,
        records=store / RECORDS_FILENAME,
        eval_cache=store / EVALCACHE_DIRNAME,
        checkpoint_dir=store / "network-checkpoints" / args.network,
        resume=args.resume,
        **(
            {"slice_trials": args.slice_trials}
            if not args.uniform and args.slice_trials is not None else {}
        ),
    )
    print(result.summary())
    if not result.found:
        print("\nno valid schedule found for at least one task")
        return 1
    return 0


def serve_smoke(args) -> int:
    """``selfcheck --serve``: crash-recovery parity of the tuning service.

    Submits four jobs from two tenants, runs one service to completion
    (the reference), then replays the identical submissions twice with a
    scripted hard kill of the daemon mid-run — once in the
    checkpoint-ahead-of-WAL commit window, once right after a RUNNING
    transition — restarts on the same store, and requires every job to
    finish with the bit-identical best schedule, trial count and
    measurement count as the uninterrupted run.
    """
    import tempfile

    from .serve import DaemonKilled, ServeChaos, ServeConfig, TuningService

    config = ServeConfig(slice_trials=2, workers=max(1, args.workers))
    trials = min(args.trials, 4)

    def submit_all(service):
        service.submit("alice", "gemm", {"n": 8, "k": 8, "m": 8},
                       args.device, trials=trials, seed=args.seed, method="q")
        service.submit("bob", "gemm", {"n": 16, "k": 8, "m": 8},
                       args.device, trials=trials, seed=args.seed + 1, method="p")
        service.submit("alice", "conv2d",
                       {"batch": 1, "in_channel": 4, "height": 8, "width": 8,
                        "out_channel": 8, "kernel": 3, "padding": 1},
                       args.device, trials=trials, seed=args.seed,
                       method="random-walk")
        service.submit("bob", "gemm", {"n": 8, "k": 8, "m": 8},
                       args.device, trials=trials, seed=args.seed + 2,
                       method="random-sample")

    def outcomes(service):
        return {
            job.job_id: (job.state.value, job.trials_done, job.best_gflops,
                         job.best_point, job.num_measurements)
            for job in service.store.jobs.values()
        }

    with tempfile.TemporaryDirectory() as store:
        reference = TuningService(store, config)
        submit_all(reference)
        slices = reference.run()
        expected = outcomes(reference)
    print(f"    reference: {len(expected)} jobs done in {slices} slices")

    failures = 0
    for label, chaos in (
        ("commit-window kill", ServeChaos(kill_at_slice=3)),
        ("pre-slice kill", ServeChaos(kill_before_run=2)),
    ):
        with tempfile.TemporaryDirectory() as store:
            doomed = TuningService(store, config, chaos=chaos)
            submit_all(doomed)
            killed = False
            try:
                doomed.run()
            except DaemonKilled:
                killed = True
            restarted = TuningService(store, config)
            restarted.run()
            parity = killed and outcomes(restarted) == expected
            if not parity:
                failures += 1
            print(f"{label:>18}: {'ok' if parity else 'FAILED'}  "
                  f"(recovered {len(restarted.recovered_jobs)} in-flight, "
                  f"{restarted.stats()['by_state']})")
    print("serve selfcheck "
          + ("passed" if failures == 0 else f"FAILED ({failures})"))
    return 1 if failures else 0


def selfcheck(args) -> int:
    """End-to-end robustness smoke: every tuner must survive a short
    (optionally fault-injected) run on the conv2d smoke workload."""
    output = conv2d_compute(1, 8, 8, 8, 16, 3, padding=1, name="smoke")
    device = DEVICES[args.device]
    injector = None
    measure = None
    if args.faults:
        injector = FaultInjector(
            compile_error_rate=0.05,
            hang_rate=0.05,
            transient_error_rate=0.3,
            jitter=0.05,
            seed=args.seed,
        )
        measure = MeasureConfig(timeout_seconds=0.5)
    trials = min(args.trials, 5)
    workers = 4 if args.parallel else max(1, args.workers)
    failures = 0
    for method in ("q", "p", "random-walk", "random-sample"):
        result = optimize(
            output, device, trials=trials, method=method, seed=args.seed,
            fault_injector=injector, measure_config=measure,
            workers=workers, cache_dir=args.cache_dir,
        )
        counts = ", ".join(
            f"{k}={v}" for k, v in sorted(result.tuning.status_counts.items())
        )
        verdict = "ok" if result.found else "FAILED"
        if not result.found:
            failures += 1
        print(f"{method:>13}: {verdict}  best={result.gflops:8.1f} GFLOPS  [{counts}]")
        if workers > 1 and result.tuning.throughput is not None:
            t = result.tuning.throughput
            print(f"{'':>13}  {t['points_per_simulated_second']:.1f} pts/s simulated, "
                  f"cache hit rate {t['cache_hit_rate']:.0%}, "
                  f"utilization {t['pool_utilization']:.0%}")
    print("selfcheck " + ("passed" if failures == 0 else f"FAILED ({failures} tuners)"))
    return 1 if failures else 0


def measurement_health_report(tuning) -> str:
    """One-block summary of where measurement budget went *besides* clean
    measurements: retries, quarantine, static lint rejects, surrogate
    screening, and — when a cluster supervisor ran — worker breaker
    trips and lease reassignments.  Printed after every tune so pipeline
    health is visible without digging through ``TuneResult``."""
    lines = [
        "measurement health:",
        f"  retries={tuning.num_retries}  "
        f"quarantined={tuning.num_quarantined}  "
        f"quarantine_hits={tuning.quarantine_hits}  "
        f"failed={tuning.num_failures}",
        f"  lint_rejects={tuning.lint_rejects}  "
        f"screened={tuning.num_screened}",
    ]
    if tuning.cluster is not None:
        c = tuning.cluster
        lines.append(
            f"  breaker_trips={c['num_breaker_trips']}  "
            f"reassigned={c['num_reassigned']}  "
            f"speculative={c['num_speculative']} "
            f"(won {c['num_speculative_wins']})  "
            f"degraded_batches={c['num_degraded_batches']}"
        )
    return "\n".join(lines)


def main(argv=None) -> int:
    """CLI entry point: tune, print, optionally save the schedule."""
    args = build_parser().parse_args(argv)
    if args.operator == "lint":
        return lint_command(args)
    if args.operator == "serve":
        return serve_command(args)
    if args.operator == "submit":
        return submit_command(args)
    if args.operator == "status":
        return status_command(args)
    if args.operator == "lookup":
        return lookup_command(args)
    if args.operator == "tune-network":
        return tune_network_command(args)
    if args.operator == "selfcheck":
        if args.lint:
            return lint_smoke(args)
        if args.tensorize:
            return tensorize_smoke(args)
        if args.surrogate:
            return surrogate_smoke(args)
        if args.cluster:
            return cluster_smoke(args)
        if args.serve:
            return serve_smoke(args)
        return selfcheck(args)
    output = build_operator(args)
    device = DEVICES[args.device]
    result = optimize(
        output, device, trials=args.trials, method=args.method, seed=args.seed,
        checkpoint=args.checkpoint, resume=args.resume,
        workers=args.workers, cache_dir=args.cache_dir,
        lint=args.lint, prune_space=args.prune_space,
        surrogate=args.surrogate, screen_ratio=args.screen_ratio,
        cluster=args.cluster, straggler_pct=args.straggler_pct,
        tensorize=args.tensorize,
    )
    print(result.summary())
    print()
    print(measurement_health_report(result.tuning))
    if not result.found:
        # Exit-code contract: a tune that found no valid schedule is a
        # failure — scripts and CI must never mistake it for success.
        print("\nno valid schedule found")
        return 1
    if args.surrogate and result.tuning.surrogate is not None:
        s = result.tuning.surrogate
        print(
            f"screening: {s['screened']} of {s['ranked']} ranked candidates "
            f"screened out ({s['forwarded']} measured, {s['explored']} "
            f"ε-promoted), {s['refits']} refits on {s['observations']} "
            f"observations, rank correlation {s['rank_correlation']:.2f}"
        )
    throughput = result.tuning.throughput
    if throughput is not None and (args.workers > 1 or args.cache_dir):
        print(
            f"throughput: {throughput['points_per_simulated_second']:.1f} pts/s "
            f"simulated ({throughput['points_per_wall_second']:.1f} pts/s wall), "
            f"cache hit rate {throughput['cache_hit_rate']:.0%}, "
            f"workers={throughput['workers']}, "
            f"utilization {throughput['pool_utilization']:.0%}"
        )
    if args.show_code:
        print()
        print(result.generated_code())
    if args.save:
        save_schedule(
            args.save,
            result.config,
            result.graph_config,
            metadata={
                "operator": args.operator,
                "device": args.device,
                "gflops": result.gflops,
            },
        )
        print(f"\nschedule saved to {args.save}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
