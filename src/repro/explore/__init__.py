"""Back-end exploration: SA + Q-learning and comparison methods (§5.1)."""

from .network import AdaDelta, MLP
from .qlearning import QAgent, Transition, normalized_reward
from .sa import select_starting_points, selection_probabilities
from .surrogate import ScreenDecision, SurrogateScreen, spearman
from .tuner import (
    BaseTuner,
    FlexTensorTuner,
    PMethodTuner,
    RandomSampleTuner,
    RandomWalkTuner,
    TuneResult,
)

__all__ = [
    "AdaDelta", "BaseTuner", "FlexTensorTuner", "MLP", "PMethodTuner",
    "QAgent", "RandomSampleTuner", "RandomWalkTuner", "ScreenDecision",
    "SurrogateScreen", "Transition", "TuneResult", "normalized_reward",
    "select_starting_points", "selection_probabilities", "spearman",
]
