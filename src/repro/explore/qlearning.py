"""Q-learning direction selection (§5.1, "Machine Learning Method").

Directions in the rearranged schedule space are the actions of a
reinforcement-learning problem: state = current point, action = direction,
reward = normalized performance improvement ``(E_e - E_p) / E_p``.  A
four-layer ReLU network predicts per-direction Q-values; training happens
periodically (every five trials) on the recorded transition tuples with
DQN-style targets ``reward + α · max_d Y(e)`` computed by a target-network
copy ``Y`` and optimized by AdaDelta.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..space import Point, ScheduleSpace
from .network import MLP


@dataclass
class Transition:
    """One recorded move: (p, direction, e, reward) of §5.1."""

    state: Point
    direction: int
    next_state: Point
    reward: float


class QAgent:
    """Direction-choosing agent over one schedule space."""

    def __init__(
        self,
        space: ScheduleSpace,
        alpha: float = 0.8,
        epsilon: float = 0.5,
        epsilon_decay: float = 0.96,
        epsilon_min: float = 0.05,
        hidden: int = 64,
        train_period: int = 5,
        seed: int = 0,
    ):
        self.space = space
        self.alpha = alpha          # discount on the bootstrapped term
        self.epsilon = epsilon      # exploration rate (decays per trial)
        self.epsilon_decay = epsilon_decay
        self.epsilon_min = epsilon_min
        self.train_period = train_period
        self.network = MLP(space.feature_size, space.num_directions, hidden, seed=seed)
        self.target_network = MLP(space.feature_size, space.num_directions, hidden, seed=seed)
        self.target_network.copy_from(self.network)
        self.transitions: List[Transition] = []
        self.losses: List[float] = []
        # Per-direction running reward statistics: a cheap global prior the
        # network refines.  Optimistic initialization encourages trying
        # each direction at least once.
        self._direction_reward = np.full(space.num_directions, 0.25)
        self._direction_count = np.zeros(space.num_directions)
        self._rng = np.random.default_rng(seed)
        self._trials_since_training = 0

    # -- acting -----------------------------------------------------------

    def choose_direction(
        self, point: Point, visited: set, rng: Optional[np.random.Generator] = None
    ) -> Optional[Tuple[int, Point]]:
        """Pick the best unvisited direction from ``point`` by Q-value
        (epsilon-greedy); None if every neighbor was already visited."""
        rng = rng or self._rng
        options = [
            (d, nb) for d, nb in self.space.neighbors(point) if nb not in visited
        ]
        if not options:
            return None
        if rng.random() < self.epsilon:
            return options[int(rng.integers(len(options)))]
        q_values = self.network.forward(self.space.features(point))
        scores = q_values + self._direction_reward
        return max(options, key=lambda item: scores[item[0]])

    def choose_directions(
        self,
        points: Sequence[Point],
        visited: set,
        rng: Optional[np.random.Generator] = None,
    ) -> List[Optional[Tuple[int, Point]]]:
        """Batched direction choice for many walk heads at once.

        One stacked :meth:`MLP.forward_batch` call scores every direction
        of every head (replacing one forward per head), then each head
        applies the same epsilon-greedy rule as :meth:`choose_direction`,
        drawing from ``rng`` in head order.  A ``taken`` set keeps two
        heads from claiming the same neighbor in the same lockstep, so a
        batch never submits duplicate points.
        """
        rng = rng or self._rng
        if not points:
            return []
        all_q = self.network.forward_batch(
            [self.space.features(p) for p in points]
        )
        taken: set = set()
        choices: List[Optional[Tuple[int, Point]]] = []
        for row, point in enumerate(points):
            options = [
                (d, nb)
                for d, nb in self.space.neighbors(point)
                if nb not in visited and nb not in taken
            ]
            if not options:
                choices.append(None)
                continue
            if rng.random() < self.epsilon:
                choice = options[int(rng.integers(len(options)))]
            else:
                scores = all_q[row] + self._direction_reward
                choice = max(options, key=lambda item: scores[item[0]])
            taken.add(choice[1])
            choices.append(choice)
        return choices

    # -- learning -----------------------------------------------------------

    def record(self, state: Point, direction: int, next_state: Point, reward: float) -> None:
        self.transitions.append(Transition(state, direction, next_state, reward))
        count = self._direction_count[direction] + 1.0
        self._direction_count[direction] = count
        mean = self._direction_reward[direction]
        self._direction_reward[direction] = mean + (reward - mean) / count

    def end_trial(self) -> None:
        """Call once per exploration trial; trains every ``train_period``
        and anneals the exploration rate."""
        self.epsilon = max(self.epsilon * self.epsilon_decay, self.epsilon_min)
        self._trials_since_training += 1
        if self._trials_since_training >= self.train_period:
            self.train()
            self._trials_since_training = 0

    def train(self, batch_size: int = 64) -> Optional[float]:
        """One training pass over a sample of recorded transitions."""
        if not self.transitions:
            return None
        sample_size = min(batch_size, len(self.transitions))
        idx = self._rng.choice(len(self.transitions), size=sample_size, replace=False)
        batch = [self.transitions[i] for i in idx]

        features = np.stack([self.space.features(t.state) for t in batch])
        next_features = np.stack([self.space.features(t.next_state) for t in batch])
        # Both networks evaluate their whole batch in one matrix forward.
        next_q = self.target_network.forward(next_features)
        current_q = self.network.forward(features)

        # DQN targets, fully vectorized: rows are distinct sampled
        # transitions, so the fancy-indexed assignment is exact — the
        # same float64 ops the per-row loop performed.
        rows = np.arange(len(batch))
        directions = np.array([t.direction for t in batch])
        rewards = np.array([t.reward for t in batch])
        targets = current_q.copy()
        targets[rows, directions] = rewards + self.alpha * next_q.max(axis=1)
        mask = np.zeros_like(targets)
        mask[rows, directions] = 1.0
        loss = self.network.train_batch(features, targets, mask)
        self.losses.append(loss)
        # Back up the trained parameters into the stabilizing copy [36].
        self.target_network.copy_from(self.network)
        return loss


    # -- checkpointing -----------------------------------------------------

    def get_state(self) -> dict:
        """JSON-compatible snapshot of everything that evolves during a
        run: exploration rate, replay buffer, direction prior, both
        networks (with optimizer accumulators), and the private RNG."""
        return {
            "epsilon": self.epsilon,
            "trials_since_training": self._trials_since_training,
            "direction_reward": self._direction_reward.tolist(),
            "direction_count": self._direction_count.tolist(),
            "transitions": [
                {
                    "state": list(t.state),
                    "direction": t.direction,
                    "next_state": list(t.next_state),
                    "reward": t.reward,
                }
                for t in self.transitions
            ],
            "losses": list(self.losses),
            "network": self.network.get_state(),
            "target_network": self.target_network.get_state(),
            "rng": self._rng.bit_generator.state,
        }

    def set_state(self, state: dict) -> None:
        """Restore a snapshot produced by :meth:`get_state`."""
        self.epsilon = state["epsilon"]
        self._trials_since_training = state["trials_since_training"]
        self._direction_reward = np.asarray(state["direction_reward"], dtype=np.float64)
        self._direction_count = np.asarray(state["direction_count"], dtype=np.float64)
        self.transitions = [
            Transition(
                state=tuple(t["state"]),
                direction=t["direction"],
                next_state=tuple(t["next_state"]),
                reward=t["reward"],
            )
            for t in state["transitions"]
        ]
        self.losses = list(state.get("losses", []))
        self.network.set_state(state["network"])
        self.target_network.set_state(state["target_network"])
        self._rng.bit_generator.state = state["rng"]


def normalized_reward(perf_from: float, perf_to: float) -> float:
    """The paper's reward ``(E_e - E_p) / E_p``, guarded for E_p = 0."""
    if perf_from <= 0.0:
        return 1.0 if perf_to > 0.0 else 0.0
    return (perf_to - perf_from) / perf_from
