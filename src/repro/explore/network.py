"""A small fully-connected network with AdaDelta training, in pure numpy.

The paper's Q-value predictor: four fully connected layers with ReLU
activations (§5.1), trained online with the AdaDelta optimizer [64] and
stabilized by a target-network copy as in DQN [36].
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np


class AdaDelta:
    """AdaDelta (Zeiler 2012): per-parameter adaptive steps, no global LR."""

    def __init__(self, shapes: Sequence, rho: float = 0.95, eps: float = 1e-6):
        self.rho = rho
        self.eps = eps
        self._grad_sq = [np.zeros(s) for s in shapes]
        self._delta_sq = [np.zeros(s) for s in shapes]

    def step(self, params: List[np.ndarray], grads: List[np.ndarray]) -> None:
        for i, (p, g) in enumerate(zip(params, grads)):
            self._grad_sq[i] = self.rho * self._grad_sq[i] + (1 - self.rho) * g * g
            update = (
                np.sqrt(self._delta_sq[i] + self.eps)
                / np.sqrt(self._grad_sq[i] + self.eps)
            ) * g
            self._delta_sq[i] = self.rho * self._delta_sq[i] + (1 - self.rho) * update * update
            p -= update

    def get_state(self) -> dict:
        """JSON-compatible accumulator snapshot (checkpoint/resume)."""
        return {
            "grad_sq": [a.tolist() for a in self._grad_sq],
            "delta_sq": [a.tolist() for a in self._delta_sq],
        }

    def set_state(self, state: dict) -> None:
        self._grad_sq = [np.asarray(a, dtype=np.float64) for a in state["grad_sq"]]
        self._delta_sq = [np.asarray(a, dtype=np.float64) for a in state["delta_sq"]]


class MLP:
    """Four fully-connected layers with ReLU between them.

    ``forward`` keeps no state; ``train_batch`` runs one gradient step on
    a masked mean-squared error (only the Q-values of taken actions carry
    loss, the DQN convention).
    """

    NUM_LAYERS = 4

    def __init__(self, input_size: int, output_size: int, hidden: int = 64, seed: int = 0):
        rng = np.random.default_rng(seed)
        sizes = [input_size, hidden, hidden, hidden, output_size]
        self.weights: List[np.ndarray] = []
        self.biases: List[np.ndarray] = []
        for fan_in, fan_out in zip(sizes[:-1], sizes[1:]):
            scale = np.sqrt(2.0 / fan_in)
            self.weights.append(rng.standard_normal((fan_in, fan_out)) * scale)
            self.biases.append(np.zeros(fan_out))
        self._optimizer = AdaDelta([w.shape for w in self.weights] + [b.shape for b in self.biases])

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Q-values for a batch (or single vector) of features."""
        single = x.ndim == 1
        h = np.atleast_2d(x)
        for i, (w, b) in enumerate(zip(self.weights, self.biases)):
            h = h @ w + b
            if i < len(self.weights) - 1:
                h = np.maximum(h, 0.0)
        return h[0] if single else h

    def forward_batch(self, features: Sequence[np.ndarray]) -> np.ndarray:
        """Q-values for a list of feature vectors via one stacked matrix
        forward — one GEMM per layer instead of one per vector."""
        return self.forward(np.stack(features))

    def train_batch(self, x: np.ndarray, targets: np.ndarray, mask: np.ndarray) -> float:
        """One AdaDelta step on ``mean((Q - target)^2 * mask)``.

        Returns the (masked) loss before the step.
        """
        activations = [np.atleast_2d(x)]
        h = activations[0]
        pre = []
        for i, (w, b) in enumerate(zip(self.weights, self.biases)):
            z = h @ w + b
            pre.append(z)
            h = np.maximum(z, 0.0) if i < len(self.weights) - 1 else z
            activations.append(h)
        output = activations[-1]
        diff = (output - targets) * mask
        count = max(mask.sum(), 1.0)
        loss = float((diff * diff).sum() / count)

        grad = 2.0 * diff / count
        w_grads: List[np.ndarray] = [None] * len(self.weights)
        b_grads: List[np.ndarray] = [None] * len(self.biases)
        for i in range(len(self.weights) - 1, -1, -1):
            w_grads[i] = activations[i].T @ grad
            b_grads[i] = grad.sum(axis=0)
            if i > 0:
                grad = (grad @ self.weights[i].T) * (pre[i - 1] > 0)
        self._optimizer.step(self.weights + self.biases, w_grads + b_grads)
        return loss

    def copy_from(self, other: "MLP") -> None:
        """Overwrite parameters with another network's (target-net sync)."""
        for w, ow in zip(self.weights, other.weights):
            w[...] = ow
        for b, ob in zip(self.biases, other.biases):
            b[...] = ob

    def get_state(self) -> dict:
        """All parameters and optimizer accumulators, JSON-compatible.

        float64 -> repr round-trips exactly through JSON, so a restored
        network continues training bit-identically.
        """
        return {
            "weights": [w.tolist() for w in self.weights],
            "biases": [b.tolist() for b in self.biases],
            "optimizer": self._optimizer.get_state(),
        }

    def set_state(self, state: dict) -> None:
        """Restore a snapshot produced by :meth:`get_state`."""
        self.weights = [np.asarray(w, dtype=np.float64) for w in state["weights"]]
        self.biases = [np.asarray(b, dtype=np.float64) for b in state["biases"]]
        self._optimizer.set_state(state["optimizer"])
