"""Exploration drivers: the Q-method, the P-method and a random walk.

* **Q-method** (FlexTensor, §5.1) — simulated annealing chooses starting
  points from the evaluated set H; the Q-learning agent picks *one*
  direction per starting point; transitions train the network every five
  trials.
* **P-method** (§6.5 baseline) — same SA starting points, but evaluates
  *all* directions of each starting point every trial, no learning.
* **Random walk** — ablation baseline: uniform random directions.

All tuners share the :class:`~repro.runtime.Evaluator`, so measured
points, simulated exploration time and convergence curves are directly
comparable (Figures 6d and 7).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from ..runtime import Evaluator
from ..space import Point, heuristic_seed_points
from .qlearning import QAgent, normalized_reward
from .sa import select_starting_points


@dataclass
class TuneResult:
    """Outcome of one exploration run."""

    best_point: Optional[Point]
    best_performance: float        # GFLOPS under the device model
    best_seconds: float            # modeled kernel time of the best point
    num_measurements: int
    exploration_seconds: float     # simulated tuning wall-clock
    curve: List[Tuple[float, float]] = field(default_factory=list)

    @property
    def found(self) -> bool:
        return self.best_point is not None and self.best_performance > 0


class BaseTuner:
    """Shared H-set bookkeeping and result assembly."""

    name = "base"

    def __init__(
        self,
        evaluator: Evaluator,
        gamma: float = 2.0,
        num_starting_points: int = 4,
        seed: int = 0,
        seed_points: Optional[List[Point]] = None,
    ):
        self.evaluator = evaluator
        self.space = evaluator.space
        self.gamma = gamma
        self.num_starting_points = num_starting_points
        self.rng = np.random.default_rng(seed)
        self.evaluated: Dict[Point, float] = {}
        self.visited: Set[Point] = set()
        self.seed_points: List[Point] = list(seed_points or [])

    # -- helpers -----------------------------------------------------------

    def _evaluate(self, point: Point) -> float:
        performance = self.evaluator.evaluate(point)
        self.evaluated[point] = performance
        self.visited.add(point)
        return performance

    def _seed(self, num_seeds: int) -> None:
        # Explicit warm-start points (e.g. from a RecordBook) come first.
        for point in self.seed_points:
            self._evaluate(point)
        for point in heuristic_seed_points(self.space, num_seeds, self.rng):
            self._evaluate(point)

    def _result(self) -> TuneResult:
        best_point, best_perf = self.evaluator.best()
        best_seconds = (
            self.evaluator.flops / (best_perf * 1e9) if best_perf > 0 else float("inf")
        )
        return TuneResult(
            best_point=best_point,
            best_performance=best_perf,
            best_seconds=best_seconds,
            num_measurements=self.evaluator.num_measurements,
            exploration_seconds=self.evaluator.clock,
            curve=self.evaluator.convergence_curve(),
        )

    def tune(self, trials: int, num_seeds: int = 4) -> TuneResult:
        raise NotImplementedError


class FlexTensorTuner(BaseTuner):
    """The paper's combined heuristic + machine-learning exploration."""

    name = "q-method"

    def __init__(
        self,
        evaluator: Evaluator,
        gamma: float = 2.0,
        num_starting_points: int = 4,
        steps: int = 4,
        epsilon: float = 0.5,
        train_period: int = 5,
        seed: int = 0,
        seed_points: Optional[List[Point]] = None,
    ):
        super().__init__(evaluator, gamma, num_starting_points, seed, seed_points)
        self.steps = steps
        self.agent = QAgent(
            self.space,
            epsilon=epsilon,
            train_period=train_period,
            seed=seed,
        )

    def tune(self, trials: int, num_seeds: int = 4) -> TuneResult:
        self._seed(num_seeds)
        for _ in range(trials):
            starts = select_starting_points(
                self.evaluated, self.num_starting_points, self.gamma, self.rng
            )
            for start in starts:
                # "The searching process can involve multiple steps" (§5.1):
                # walk up to ``steps`` moves from the starting point, always
                # continuing from the freshly evaluated neighbor.
                current = start
                for _step in range(self.steps):
                    choice = self.agent.choose_direction(current, self.visited, self.rng)
                    if choice is None:
                        break
                    direction, neighbor = choice
                    perf_from = self.evaluated[current]
                    perf_to = self._evaluate(neighbor)
                    self.agent.record(
                        current, direction, neighbor,
                        normalized_reward(perf_from, perf_to),
                    )
                    current = neighbor
            self.agent.end_trial()
        return self._result()


class PMethodTuner(BaseTuner):
    """Exhaustive-direction exploration (the paper's P-method, §6.5)."""

    name = "p-method"

    def tune(self, trials: int, num_seeds: int = 4) -> TuneResult:
        self._seed(num_seeds)
        for _ in range(trials):
            starts = select_starting_points(
                self.evaluated, self.num_starting_points, self.gamma, self.rng
            )
            for start in starts:
                for _direction, neighbor in self.space.neighbors(start):
                    if neighbor in self.visited:
                        continue
                    self._evaluate(neighbor)
        return self._result()


class RandomWalkTuner(BaseTuner):
    """Ablation baseline: SA starting points, uniformly random directions."""

    name = "random-walk"

    def tune(self, trials: int, num_seeds: int = 4) -> TuneResult:
        self._seed(num_seeds)
        for _ in range(trials):
            starts = select_starting_points(
                self.evaluated, self.num_starting_points, self.gamma, self.rng
            )
            for start in starts:
                options = [
                    (d, nb)
                    for d, nb in self.space.neighbors(start)
                    if nb not in self.visited
                ]
                if not options:
                    continue
                _direction, neighbor = options[int(self.rng.integers(len(options)))]
                self._evaluate(neighbor)
        return self._result()


class RandomSampleTuner(BaseTuner):
    """Ablation baseline: uniform random sampling of the flat space —
    what the search degenerates to without the neighborhood
    rearrangement of §4.2."""

    name = "random-sample"

    def tune(self, trials: int, num_seeds: int = 4) -> TuneResult:
        self._seed(num_seeds)
        for _ in range(trials):
            for _ in range(self.num_starting_points):
                self._evaluate(self.space.random_point(self.rng))
        return self._result()
