"""Exploration drivers: the Q-method, the P-method and a random walk.

* **Q-method** (FlexTensor, §5.1) — simulated annealing chooses starting
  points from the evaluated set H; the Q-learning agent picks *one*
  direction per starting point; transitions train the network every five
  trials.
* **P-method** (§6.5 baseline) — same SA starting points, but evaluates
  *all* directions of each starting point every trial, no learning.
* **Random walk** — ablation baseline: uniform random directions.

All tuners share the :class:`~repro.runtime.Evaluator`, so measured
points, simulated exploration time and convergence curves are directly
comparable (Figures 6d and 7).

The shared :meth:`BaseTuner.tune` loop is fault tolerant: it degrades
gracefully when the evaluator reports a poisoned neighborhood (high
recent error rate) and can periodically checkpoint its full state —
H set, visited set, RNG, Q-network — so a killed run resumes exactly
where it stopped (``docs/robustness.md``).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Set, Tuple, Union

import numpy as np

from ..runtime import BatchEngine, Evaluator, load_checkpoint, save_checkpoint
from ..space import Point, heuristic_seed_points
from .qlearning import QAgent, normalized_reward
from .sa import select_starting_points


@dataclass
class TuneResult:
    """Outcome of one exploration run."""

    best_point: Optional[Point]
    best_performance: float        # GFLOPS under the device model
    best_seconds: float            # modeled kernel time of the best point
    num_measurements: int
    exploration_seconds: float     # simulated tuning wall-clock
    curve: List[Tuple[float, float]] = field(default_factory=list)
    status_counts: Dict[str, int] = field(default_factory=dict)
    throughput: Optional[Dict] = None   # BatchEngine.stats() when one ran
    lint_rejects: int = 0               # points statically rejected (zero cost)
    lint_rules: Dict[str, int] = field(default_factory=dict)  # rule -> fire count
    num_screened: int = 0               # points answered by the surrogate screen
    surrogate: Optional[Dict] = None    # SurrogateScreen.stats() when one ran
    num_retries: int = 0                # measurement attempts beyond the first
    quarantine_hits: int = 0            # free lookups answered by quarantine
    num_quarantined: int = 0            # points in quarantine at the end
    cluster: Optional[Dict] = None      # ClusterSupervisor.stats() when one ran
    lowering: Optional[Dict] = None     # LoweringMemo.stats() when memoizing
    profile: Optional[Dict] = None      # HotPathProfiler.stats() (wall seconds)

    @property
    def found(self) -> bool:
        return self.best_point is not None and self.best_performance > 0

    @property
    def num_failures(self) -> int:
        """Measurements that did not produce a clean performance value.

        Statically-rejected points are excluded: they never reached the
        measurement pipeline (see :attr:`lint_rejects`).
        """
        ok = self.status_counts.get("ok", 0) + self.status_counts.get("flaky_retried", 0)
        return sum(self.status_counts.values()) - ok - self.status_counts.get("illegal", 0)


class BaseTuner:
    """Shared H-set bookkeeping, the fault-aware tuning loop, and
    checkpoint/resume."""

    name = "base"

    def __init__(
        self,
        evaluator: Evaluator,
        gamma: float = 2.0,
        num_starting_points: int = 4,
        seed: int = 0,
        seed_points: Optional[List[Point]] = None,
        degrade_threshold: float = 0.5,
        engine: Optional[BatchEngine] = None,
    ):
        self.evaluator = evaluator
        self.space = evaluator.space
        self.gamma = gamma
        self.num_starting_points = num_starting_points
        self.rng = np.random.default_rng(seed)
        self.evaluated: Dict[Point, float] = {}
        self.visited: Set[Point] = set()
        self.seed_points: List[Point] = list(seed_points or [])
        # Above this recent-error-rate the tuner assumes the neighborhood
        # is poisoned (quarantined / failing points) and degrades: shorter
        # walks plus a fresh SA restart to escape the region.
        self.degrade_threshold = degrade_threshold
        # Batched evaluation engine (repro.runtime.parallel).  ``None``
        # and ``workers=1`` both take the exact serial evaluation path;
        # ``workers>1`` switches the tuners to their batched trial shapes.
        self.engine = engine

    @property
    def parallel(self) -> bool:
        """Whether trials should submit whole candidate batches.

        A supervised cluster whose workers are all quarantined (every
        breaker open, or every node dead) degrades the trial shape
        itself: the tuner proposes serially, exactly like ``workers=1``,
        so a fully-quarantined run stays bit-identical to a serial run.
        Workers re-admitted after cool-down restore the batched shape.
        """
        if self.engine is None or self.engine.workers <= 1:
            return False
        return not self.engine.cluster_degraded()

    # -- helpers -----------------------------------------------------------

    def _evaluate(self, point: Point) -> float:
        return self._evaluate_batch([point])[0]

    def _evaluate_batch(self, points: List[Point]) -> List[float]:
        """Evaluate candidates (through the engine when one is attached)
        and fold them into the H set.  With no engine — or ``workers=1``
        — this is byte-for-byte the pre-engine serial loop: evaluation
        consumes no tuner RNG and H/visited updates commute with it, so
        collect-then-batch trials stay bit-identical."""
        if not points:
            return []
        if self.engine is not None:
            performances = self.engine.evaluate_batch(points)
        else:
            performances = [self.evaluator.evaluate(p) for p in points]
        for point, performance in zip(points, performances):
            self.evaluated[point] = performance
            self.visited.add(point)
        return performances

    def _seed(self, num_seeds: int) -> None:
        # Explicit warm-start points (e.g. from a RecordBook) come first.
        # One batch for the whole seed set: heuristic_seed_points draws
        # from the tuner RNG before any evaluation, same as the serial
        # order did.
        batch = list(self.seed_points)
        batch.extend(heuristic_seed_points(self.space, num_seeds, self.rng))
        self._evaluate_batch(batch)

    def _degraded(self) -> bool:
        """Whether the measurement pipeline reports a poisoned region."""
        return self.evaluator.recent_error_rate() >= self.degrade_threshold

    def _result(self) -> TuneResult:
        best_point, best_perf = self.evaluator.best()
        best_seconds = (
            self.evaluator.flops / (best_perf * 1e9) if best_perf > 0 else float("inf")
        )
        return TuneResult(
            best_point=best_point,
            best_performance=best_perf,
            best_seconds=best_seconds,
            num_measurements=self.evaluator.num_measurements,
            exploration_seconds=self.evaluator.clock,
            curve=self.evaluator.convergence_curve(),
            status_counts=dict(self.evaluator.status_counts),
            lint_rejects=self.evaluator.num_lint_rejects,
            lint_rules=dict(self.evaluator.lint_rule_counts),
            num_retries=self.evaluator.num_retries,
            quarantine_hits=self.evaluator.num_quarantine_hits,
            num_quarantined=len(self.evaluator.quarantine),
            lowering=(
                self.evaluator.lowering_memo.stats()
                if self.evaluator.lowering_memo is not None
                else None
            ),
            profile=self.evaluator.profiler.stats(),
        )

    # -- the tuning loop ---------------------------------------------------

    def tune(
        self,
        trials: int,
        num_seeds: int = 4,
        checkpoint: Optional[Union[str, Path]] = None,
        checkpoint_every: int = 1,
        resume: bool = False,
    ) -> TuneResult:
        """Run the exploration loop, optionally checkpointed.

        Args:
            trials: number of exploration trials.
            num_seeds: heuristic + random seed points evaluated up front.
            checkpoint: path of a JSONL checkpoint file; when set, full
                tuner state is snapshotted every ``checkpoint_every``
                trials (atomic write-then-rename).
            checkpoint_every: snapshot period in trials.
            resume: restore the newest snapshot from ``checkpoint`` (if
                any) and continue from its trial index; the finished run
                is bit-identical to an uninterrupted one.
        """
        start_trial = 0
        if checkpoint and resume:
            start_trial = self._restore(checkpoint)
        if start_trial == 0:
            self._seed(num_seeds)
        for trial in range(start_trial, trials):
            self._run_trial(trial)
            self._end_trial(trial)
            if checkpoint and (trial + 1) % checkpoint_every == 0:
                save_checkpoint(checkpoint, self._snapshot(trial + 1))
        result = self._result()
        if self.engine is not None:
            # Engine counters are per-process, so after a resume they
            # cover the resumed portion of the run only.
            result.throughput = self.engine.stats()
            if self.engine.surrogate is not None:
                # Surrogate counters live in its (checkpointed) state, so
                # they cover the whole run even across a resume.
                result.surrogate = self.engine.surrogate.stats()
                result.num_screened = self.engine.surrogate.num_screened
            if self.engine.cluster is not None:
                # Supervisor counters are checkpointed state too, so they
                # cover the whole run even across a resume.
                result.cluster = self.engine.cluster.stats()
        return result

    def _run_trial(self, trial: int) -> None:
        raise NotImplementedError

    def _end_trial(self, trial: int) -> None:
        """Per-trial hook (the Q-method trains its network here)."""

    # -- checkpoint/resume -------------------------------------------------

    def _snapshot(self, next_trial: int) -> Dict:
        return {"tuner": self.name, "trial": next_trial, "state": self.get_state()}

    def _restore(self, checkpoint: Union[str, Path]) -> int:
        """Load the newest snapshot; returns the trial index to resume at
        (0 — a fresh start — when there is nothing usable)."""
        snapshot = load_checkpoint(checkpoint)
        if snapshot is None:
            return 0
        if snapshot.get("tuner") != self.name:
            warnings.warn(
                f"checkpoint {checkpoint} was written by tuner "
                f"{snapshot.get('tuner')!r}, not {self.name!r}; starting fresh"
            )
            return 0
        self.set_state(snapshot["state"])
        return int(snapshot["trial"])

    def get_state(self) -> Dict:
        """JSON-compatible snapshot of all mutable tuner state (insertion
        order of H is preserved — the SA distribution and best() tie-breaks
        depend on it)."""
        state = {
            "rng": self.rng.bit_generator.state,
            "evaluated": [[list(p), perf] for p, perf in self.evaluated.items()],
            "visited": [list(p) for p in sorted(self.visited)],
            "evaluator": self.evaluator.get_state(),
        }
        if self.engine is not None and self.engine.surrogate is not None:
            # The surrogate's training set, fitted trees, ε RNG and
            # counters checkpoint alongside the Q-network so a resumed
            # run makes bit-identical screening decisions.
            state["surrogate"] = self.engine.surrogate.get_state()
        if self.engine is not None and self.engine.cluster is not None:
            # The cluster supervisor's registry, breakers, health EWMAs,
            # lease history and RNG checkpoint too, so a resumed run
            # replays identical supervision decisions (docs/cluster.md).
            state["cluster"] = self.engine.cluster.get_state()
        return state

    def set_state(self, state: Dict) -> None:
        """Restore a snapshot produced by :meth:`get_state`."""
        self.rng.bit_generator.state = state["rng"]
        self.evaluated = {tuple(p): perf for p, perf in state["evaluated"]}
        self.visited = {tuple(p) for p in state["visited"]}
        self.evaluator.set_state(state["evaluator"])
        if (
            self.engine is not None
            and self.engine.surrogate is not None
            and "surrogate" in state
        ):
            self.engine.surrogate.set_state(state["surrogate"])
        if (
            self.engine is not None
            and self.engine.cluster is not None
            and "cluster" in state
        ):
            self.engine.cluster.set_state(state["cluster"])


class FlexTensorTuner(BaseTuner):
    """The paper's combined heuristic + machine-learning exploration."""

    name = "q-method"

    def __init__(
        self,
        evaluator: Evaluator,
        gamma: float = 2.0,
        num_starting_points: int = 4,
        steps: int = 4,
        epsilon: float = 0.5,
        train_period: int = 5,
        seed: int = 0,
        seed_points: Optional[List[Point]] = None,
        degrade_threshold: float = 0.5,
        engine: Optional[BatchEngine] = None,
    ):
        super().__init__(
            evaluator, gamma, num_starting_points, seed, seed_points,
            degrade_threshold=degrade_threshold, engine=engine,
        )
        self.steps = steps
        self.agent = QAgent(
            self.space,
            epsilon=epsilon,
            train_period=train_period,
            seed=seed,
        )

    def _run_trial(self, trial: int) -> None:
        if self.parallel:
            self._run_trial_batched(trial)
            return
        steps = self.steps
        if self._degraded():
            # Poisoned neighborhood: shorten the walks and inject a fresh
            # SA restart so the search escapes instead of looping on a
            # broken region.
            steps = max(1, self.steps // 2)
            self._evaluate(self.space.random_point(self.rng))
        starts = select_starting_points(
            self.evaluated, self.num_starting_points, self.gamma, self.rng
        )
        for start in starts:
            # "The searching process can involve multiple steps" (§5.1):
            # walk up to ``steps`` moves from the starting point, always
            # continuing from the freshly evaluated neighbor.
            current = start
            for _step in range(steps):
                choice = self.agent.choose_direction(current, self.visited, self.rng)
                if choice is None:
                    break
                direction, neighbor = choice
                perf_from = self.evaluated[current]
                perf_to = self._evaluate(neighbor)
                self.agent.record(
                    current, direction, neighbor,
                    normalized_reward(perf_from, perf_to),
                )
                current = neighbor

    def _run_trial_batched(self, trial: int) -> None:
        """Lockstep-parallel variant of the Q-trial: all walk heads take
        their step together, so each step costs one batched network
        forward plus one batched evaluation instead of one of each per
        head.  The serial trial interleaves direction-prior updates with
        later heads' choices, so this path is reserved for ``workers>1``
        — the serial path stays bit-identical to the pre-engine code."""
        steps = self.steps
        if self._degraded():
            steps = max(1, self.steps // 2)
            self._evaluate(self.space.random_point(self.rng))
        starts = select_starting_points(
            self.evaluated, self.num_starting_points, self.gamma, self.rng
        )
        heads = list(starts)
        active = list(range(len(heads)))
        for _step in range(steps):
            if not active:
                break
            choices = self.agent.choose_directions(
                [heads[i] for i in active], self.visited, self.rng
            )
            moves = [
                (i, choice[0], choice[1])
                for i, choice in zip(active, choices)
                if choice is not None
            ]
            if not moves:
                break
            performances = self._evaluate_batch([nb for _, _, nb in moves])
            for (i, direction, neighbor), perf_to in zip(moves, performances):
                perf_from = self.evaluated[heads[i]]
                self.agent.record(
                    heads[i], direction, neighbor,
                    normalized_reward(perf_from, perf_to),
                )
                heads[i] = neighbor
            active = [i for i, _, _ in moves]

    def _end_trial(self, trial: int) -> None:
        self.agent.end_trial()

    def get_state(self) -> Dict:
        state = super().get_state()
        state["agent"] = self.agent.get_state()
        return state

    def set_state(self, state: Dict) -> None:
        super().set_state(state)
        self.agent.set_state(state["agent"])


class PMethodTuner(BaseTuner):
    """Exhaustive-direction exploration (the paper's P-method, §6.5)."""

    name = "p-method"

    def _run_trial(self, trial: int) -> None:
        starts = select_starting_points(
            self.evaluated, self.num_starting_points, self.gamma, self.rng
        )
        # Collect every unvisited direction of every start, then submit
        # the whole trial as one batch.  Marking visited at collection
        # reproduces the serial membership checks exactly (a neighbor
        # shared by two starts is collected once, in the same position
        # the serial loop would have evaluated it).
        batch: List[Point] = []
        for start in starts:
            for _direction, neighbor in self.space.neighbors(start):
                if neighbor in self.visited:
                    continue
                self.visited.add(neighbor)
                batch.append(neighbor)
        self._evaluate_batch(batch)


class RandomWalkTuner(BaseTuner):
    """Ablation baseline: SA starting points, uniformly random directions."""

    name = "random-walk"

    def _run_trial(self, trial: int) -> None:
        if self._degraded():
            self._evaluate(self.space.random_point(self.rng))
        starts = select_starting_points(
            self.evaluated, self.num_starting_points, self.gamma, self.rng
        )
        # One random unvisited direction per start, drawn in start order
        # (evaluation consumes no tuner RNG, so collect-then-batch makes
        # the same draws the serial loop made), submitted as one batch.
        batch: List[Point] = []
        for start in starts:
            options = [
                (d, nb)
                for d, nb in self.space.neighbors(start)
                if nb not in self.visited
            ]
            if not options:
                continue
            _direction, neighbor = options[int(self.rng.integers(len(options)))]
            self.visited.add(neighbor)
            batch.append(neighbor)
        self._evaluate_batch(batch)


class RandomSampleTuner(BaseTuner):
    """Ablation baseline: uniform random sampling of the flat space —
    what the search degenerates to without the neighborhood
    rearrangement of §4.2."""

    name = "random-sample"

    def _run_trial(self, trial: int) -> None:
        self._evaluate_batch(
            [self.space.random_point(self.rng) for _ in range(self.num_starting_points)]
        )
