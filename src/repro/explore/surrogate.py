"""Surrogate-guided batch screening: spend measurement budget wisely.

The lint gate (``repro.analysis.lint``) rejects *illegal* candidates for
free, but legal-but-slow candidates still cost a full simulated
measurement each.  Following AutoTVM's "Learning to Optimize Tensor
Programs" recipe, :class:`SurrogateScreen` puts a cheap learned ranker in
front of real measurement: an online gradient-boosted-tree cost model
(``repro.learn``) is trained incrementally on every completed
measurement, and each candidate batch is ranked so that only the
top-``screen_ratio`` fraction — plus an ε-greedy exploration slice that
keeps the search unbiased — is forwarded to the measurement pipeline.
Screened-out points are billed at near-zero simulated cost (one model
inference) and answered with the surrogate's predicted performance.

Determinism: the screen owns a private seeded RNG for its ε draws, the
refit cadence is a pure function of the number of observations, and the
GBT ensemble serializes bit-exactly — so a seeded run with screening on
is reproducible and checkpoint/resume roundtrips through
:meth:`get_state` / :meth:`set_state` exactly like the Q-network.

The full measure pipeline with every stage enabled is::

    lint gate -> cache probe -> surrogate screen -> (fork pool) measure

See ``docs/surrogate.md``.
"""

from __future__ import annotations

import math
from contextlib import nullcontext
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..codegen import batch_point_features, point_features
from ..learn import GradientBoostedTrees
from ..space import Point

#: Simulated seconds one surrogate inference costs per candidate — the
#: "near-zero" price of a screened point (a GBT forward pass, ~10^4x
#: cheaper than compiling and running a kernel).
INFERENCE_SECONDS = 1e-4


@dataclass
class ScreenDecision:
    """Outcome of screening one candidate batch."""

    forward: List[int]                  # positions to measure, submission order
    screened: List[Tuple[int, float]]   # (position, predicted performance)
    scores: Dict[int, float]            # position -> model score (log1p GFLOPS)
    cost_seconds: float = 0.0           # simulated inference cost to bill
    ranked: bool = False                # whether the model actually ranked

    @property
    def predictions(self) -> Dict[int, float]:
        return dict(self.screened)


@dataclass
class _QualityStats:
    """Running rank-quality of the surrogate against real measurements."""

    batches: int = 0
    correlation_sum: float = 0.0
    top_hits: int = 0        # batches whose best measured point was ranked #1

    @property
    def mean_rank_correlation(self) -> float:
        return self.correlation_sum / self.batches if self.batches else 0.0


def spearman(a: Sequence[float], b: Sequence[float]) -> float:
    """Spearman rank correlation (0.0 when either side is constant)."""
    x = np.asarray(a, dtype=np.float64)
    y = np.asarray(b, dtype=np.float64)
    if len(x) < 2 or np.ptp(x) == 0 or np.ptp(y) == 0:
        return 0.0
    rx = np.argsort(np.argsort(x)).astype(np.float64)
    ry = np.argsort(np.argsort(y)).astype(np.float64)
    rx -= rx.mean()
    ry -= ry.mean()
    denom = math.sqrt(float((rx**2).sum()) * float((ry**2).sum()))
    if denom == 0:
        return 0.0
    return float((rx * ry).sum()) / denom


class SurrogateScreen:
    """Online learned cost model screening candidate batches.

    Args:
        space: the schedule space candidates come from (featurization).
        screen_ratio: fraction of each ranked batch forwarded to real
            measurement (at least one candidate is always forwarded).
        epsilon: per-candidate probability that a screened-out point is
            forwarded anyway — the exploration slice that keeps the
            search from collapsing onto the model's blind spots.
        min_train: observations required before ranking starts; until
            then every candidate is forwarded (the random warm-up that
            gives the model unbiased coverage).
        refit_every: base refit cadence.  The model is refit once this
            many new observations have accumulated since the last fit,
            with a deterministic backoff once the training set outgrows
            the warm-up (``12 * refit_every`` observations): the gap
            required becomes ``max(refit_every, (fitted_at - warmup) //
            4)``, growing geometrically with the training set so total
            refit cost stays O(n) instead of O(n²) over a long run while
            the early search keeps a fresh model.  A pure function of
            checkpointed fields (observation count and ``fitted_at``),
            so seeded runs and kill+resume are bit-identical.
        train_window: training-window policy.  0 (the default) refits on
            the full history; a positive value refits on only the most
            recent ``train_window`` observations — a deterministic slice
            by observation order, so checkpointed resumes still fit on
            exactly the same rows.  Screening dedup and counters always
            see the full history either way.
        seed: seed of the private ε-draw RNG.
        inference_seconds: simulated cost billed per ranked candidate.
        window: size of the rolling score window used to screen batches
            too small to rank internally (serial tuners submit one
            candidate at a time): a lone candidate is forwarded iff its
            score reaches the window's top ``screen_ratio`` quantile.
    """

    def __init__(
        self,
        space,
        screen_ratio: float = 0.25,
        epsilon: float = 0.15,
        min_train: int = 12,
        refit_every: int = 4,
        seed: int = 0,
        inference_seconds: float = INFERENCE_SECONDS,
        window: int = 64,
        train_window: int = 0,
    ):
        if not 0.0 < screen_ratio <= 1.0:
            raise ValueError(f"screen_ratio must be in (0, 1], got {screen_ratio}")
        self.space = space
        self.screen_ratio = screen_ratio
        self.epsilon = epsilon
        self.min_train = max(2, int(min_train))
        self.refit_every = max(1, int(refit_every))
        self.inference_seconds = inference_seconds
        self.window = max(8, int(window))
        self.train_window = max(0, int(train_window))
        self._recent_scores: List[float] = []
        self.model = GradientBoostedTrees()
        self._rng = np.random.default_rng(seed)
        self._xs: List[np.ndarray] = []
        self._ys: List[float] = []
        self._seen: Dict[Point, int] = {}      # point -> index into _xs/_ys
        self._fitted_at = 0                    # observation count at last fit
        self._feature_cache: Dict[Point, np.ndarray] = {}
        # Counters (surface in TuneResult / the throughput report).
        self.num_observations = 0
        self.num_refits = 0
        self.num_ranked = 0
        self.num_screened = 0
        self.num_forwarded = 0
        self.num_explored = 0                  # ε-slice promotions
        self.quality = _QualityStats()
        self._quality_pairs: List[Tuple[float, float]] = []
        # Hot path (ISSUE #7): vectorized featurization of whole batches
        # (bit-identical to the scalar path) and optional per-stage wall
        # profiling.  The profiler is wired by the batch engine so the
        # surrogate's stages land in the same TuneResult profile as the
        # evaluator's.
        self.use_batch_features = True
        self.profiler = None

    def _section(self, name: str):
        return self.profiler.section(name) if self.profiler is not None else nullcontext()

    # -- featurization -----------------------------------------------------

    def features(self, point: Point) -> np.ndarray:
        cached = self._feature_cache.get(point)
        if cached is None:
            cached = point_features(self.space, point)
            self._feature_cache[point] = cached
        return cached

    def features_matrix(self, points: Sequence[Point]) -> np.ndarray:
        """Feature rows for a batch, filling the per-point cache.

        With :attr:`use_batch_features` (the default) uncached points
        are featurized in one vectorized pass — bit-identical to calling
        :meth:`features` per point (pinned by the parity suite)."""
        if not self.use_batch_features:
            return np.stack([self.features(p) for p in points])
        missing = list(dict.fromkeys(
            p for p in points if p not in self._feature_cache
        ))
        if missing:
            rows = batch_point_features(self.space, missing)
            for point, row in zip(missing, rows):
                self._feature_cache[point] = row.copy()
        return np.stack([self._feature_cache[p] for p in points])

    # -- training ----------------------------------------------------------

    @property
    def ready(self) -> bool:
        """Whether the model has been fit and may rank candidates."""
        return self.model.is_fitted and len(self._ys) >= self.min_train

    def observe(self, point: Point, performance: float) -> None:
        """Fold one completed measurement into the training set.

        Re-measurements of a known point overwrite its label (the model
        tracks the latest value); the deterministic refit cadence counts
        *new* points only.
        """
        point = Point(point)
        index = self._seen.get(point)
        if index is not None:
            self._ys[index] = float(performance)
            return
        self._seen[point] = len(self._ys)
        with self._section("features"):
            self._xs.append(self.features(point))
        self._ys.append(float(performance))
        self.num_observations += 1
        self._maybe_refit()

    def _maybe_refit(self) -> None:
        """Deterministic geometric refit backoff.

        The first fit happens at ``min_train``; past the warm-up
        (``12 * refit_every`` observations) the gap between refits grows
        as ``(fitted_at - warmup) // 4``.  Each fit is O(current n), and
        because the gaps grow geometrically the total over a run is O(n)
        fits-worth of work instead of the O(n²) a fixed cadence costs —
        while inside the warm-up the cadence is exactly the legacy
        ``refit_every``, keeping the early search's model fresh.  Pure
        function of checkpointed fields — kill+resume refits at the same
        counts."""
        count = len(self._ys)
        if count < self.min_train:
            return
        warmup = 12 * self.refit_every
        gap = max(self.refit_every, (self._fitted_at - warmup) // 4)
        if self.model.is_fitted and count - self._fitted_at < gap:
            return
        self.refit()

    def refit(self) -> None:
        """Refit the GBT on the training window (log1p target —
        performance spans orders of magnitude and failures sit at 0).
        ``train_window == 0`` means full history; otherwise the most
        recent ``train_window`` observations, by observation order."""
        if not self._ys:
            return
        with self._section("surrogate_fit"):
            start = 0
            if self.train_window and len(self._ys) > self.train_window:
                start = len(self._ys) - self.train_window
            x = np.stack(self._xs[start:])
            y = np.log1p(np.asarray(self._ys[start:], dtype=np.float64))
            self.model.fit(x, y)
        self._fitted_at = len(self._ys)
        self.num_refits += 1

    # -- screening ---------------------------------------------------------

    def predict(self, points: Sequence[Point]) -> np.ndarray:
        """Model scores (log1p GFLOPS) for a list of points — one
        batched featurization and one vectorized ensemble walk."""
        with self._section("features"):
            x = self.features_matrix(points)
        with self._section("surrogate_predict"):
            return self.model.predict(x)

    def screen(self, points: Sequence[Point]) -> ScreenDecision:
        """Partition a candidate batch into forward / screened-out.

        Until the model is ready, everything is forwarded at zero cost.
        Once ranking starts, the top ``ceil(screen_ratio * n)`` scorers
        are forwarded (ties broken by submission order), each remaining
        candidate is promoted with probability ``epsilon`` (one RNG draw
        per candidate, in submission order), and the rest are screened
        out with their predicted performance (``expm1`` of the score,
        clipped at 0).

        A batch of one (serial tuners submit candidates one at a time)
        cannot be ranked internally, so it is judged against the rolling
        window of recent scores instead: forwarded iff its score reaches
        the window's top ``screen_ratio`` quantile, with the same ε
        escape hatch.  Every score feeds the window either way.
        """
        n = len(points)
        if not self.ready or n == 0:
            return ScreenDecision(forward=list(range(n)), screened=[], scores={})
        scores = self.predict(points)
        if n == 1:
            decision = self._screen_single(float(scores[0]))
            self._recent_scores.append(float(scores[0]))
            del self._recent_scores[: -self.window]
            return decision
        keep = max(1, math.ceil(self.screen_ratio * n))
        order = sorted(range(n), key=lambda i: (-scores[i], i))
        chosen = set(order[:keep])
        for position in sorted(order[keep:]):
            if self._rng.random() < self.epsilon:
                chosen.add(position)
                self.num_explored += 1
        forward = sorted(chosen)
        screened = [
            (i, max(0.0, float(np.expm1(scores[i])))) for i in range(n) if i not in chosen
        ]
        self.num_ranked += n
        self.num_forwarded += len(forward)
        self.num_screened += len(screened)
        self._recent_scores.extend(float(s) for s in scores)
        del self._recent_scores[: -self.window]
        return ScreenDecision(
            forward=forward,
            screened=screened,
            scores={i: float(scores[i]) for i in range(n)},
            cost_seconds=self.inference_seconds * n,
            ranked=True,
        )

    def _screen_single(self, score: float) -> ScreenDecision:
        """Window-quantile policy for one-candidate batches."""
        if len(self._recent_scores) < 8:
            forwarded = True
        else:
            threshold = float(
                np.quantile(self._recent_scores, 1.0 - self.screen_ratio)
            )
            forwarded = score >= threshold
            if not forwarded and self._rng.random() < self.epsilon:
                forwarded = True
                self.num_explored += 1
        self.num_ranked += 1
        if forwarded:
            self.num_forwarded += 1
            forward = [0]
            screened: List[Tuple[int, float]] = []
        else:
            self.num_screened += 1
            forward = []
            screened = [(0, max(0.0, float(np.expm1(score))))]
        return ScreenDecision(
            forward=forward,
            screened=screened,
            scores={0: score},
            cost_seconds=self.inference_seconds,
            ranked=True,
        )

    def note_quality(
        self, decision: ScreenDecision, measured: Sequence[Tuple[int, float]]
    ) -> None:
        """Score the screen's ranking against the real measurements of
        the forwarded candidates (position, performance).

        Single-candidate decisions (serial tuners) cannot be correlated
        in isolation, so their (score, measurement) pairs pool across
        decisions and are scored once 16 have accumulated."""
        if not decision.ranked or not measured:
            return
        if len(measured) >= 2:
            predicted = [decision.scores[i] for i, _ in measured]
            actual = [perf for _, perf in measured]
            self._fold_quality(predicted, actual)
            return
        position, performance = measured[0]
        self._quality_pairs.append((decision.scores[position], performance))
        if len(self._quality_pairs) >= 16:
            self._fold_quality(
                [score for score, _ in self._quality_pairs],
                [perf for _, perf in self._quality_pairs],
            )
            self._quality_pairs = []

    def _fold_quality(self, predicted: List[float], actual: List[float]) -> None:
        self.quality.batches += 1
        self.quality.correlation_sum += spearman(predicted, actual)
        best_measured = max(range(len(actual)), key=actual.__getitem__)
        top_ranked = max(range(len(predicted)), key=predicted.__getitem__)
        if best_measured == top_ranked:
            self.quality.top_hits += 1

    # -- reporting ---------------------------------------------------------

    def stats(self) -> Dict:
        """Screening counters for TuneResult and the throughput report."""
        return {
            "observations": self.num_observations,
            "refits": self.num_refits,
            "ranked": self.num_ranked,
            "forwarded": self.num_forwarded,
            "screened": self.num_screened,
            "explored": self.num_explored,
            "screen_ratio": self.screen_ratio,
            "epsilon": self.epsilon,
            "quality_batches": self.quality.batches,
            "rank_correlation": self.quality.mean_rank_correlation,
            "top_hit_rate": (
                self.quality.top_hits / self.quality.batches
                if self.quality.batches
                else 0.0
            ),
        }

    # -- checkpointing -----------------------------------------------------

    def get_state(self) -> Dict:
        """JSON-compatible snapshot of everything that evolves during a
        run: the training set, the fitted ensemble, the ε RNG, the refit
        bookkeeping and every counter.  Bit-identical resume: restoring
        this state reproduces the exact screening decisions an
        uninterrupted run would have made."""
        return {
            "screen_ratio": self.screen_ratio,
            "epsilon": self.epsilon,
            "min_train": self.min_train,
            "refit_every": self.refit_every,
            "inference_seconds": self.inference_seconds,
            "window": self.window,
            "train_window": self.train_window,
            "recent_scores": list(self._recent_scores),
            "observations": [
                [list(p), self._ys[i]] for p, i in self._seen.items()
            ],
            "fitted_at": self._fitted_at,
            "model": self.model.get_state(),
            "rng": self._rng.bit_generator.state,
            "num_observations": self.num_observations,
            "num_refits": self.num_refits,
            "num_ranked": self.num_ranked,
            "num_screened": self.num_screened,
            "num_forwarded": self.num_forwarded,
            "num_explored": self.num_explored,
            "quality": {
                "batches": self.quality.batches,
                "correlation_sum": self.quality.correlation_sum,
                "top_hits": self.quality.top_hits,
            },
            "quality_pairs": [list(pair) for pair in self._quality_pairs],
        }

    def set_state(self, state: Dict) -> None:
        """Restore a snapshot produced by :meth:`get_state`."""
        self.screen_ratio = state["screen_ratio"]
        self.epsilon = state["epsilon"]
        self.min_train = state["min_train"]
        self.refit_every = state["refit_every"]
        self.inference_seconds = state["inference_seconds"]
        self.window = state["window"]
        self.train_window = state.get("train_window", 0)
        self._recent_scores = list(state["recent_scores"])
        self._xs = []
        self._ys = []
        self._seen = {}
        restored = [Point(raw_point) for raw_point, _ in state["observations"]]
        if restored:
            self.features_matrix(restored)  # warm the cache in one pass
        for point, (_raw, label) in zip(restored, state["observations"]):
            self._seen[point] = len(self._ys)
            self._xs.append(self.features(point))
            self._ys.append(label)
        self._fitted_at = state["fitted_at"]
        self.model.set_state(state["model"])
        self._rng.bit_generator.state = state["rng"]
        self.num_observations = state["num_observations"]
        self.num_refits = state["num_refits"]
        self.num_ranked = state["num_ranked"]
        self.num_screened = state["num_screened"]
        self.num_forwarded = state["num_forwarded"]
        self.num_explored = state["num_explored"]
        quality = state["quality"]
        self.quality = _QualityStats(
            batches=quality["batches"],
            correlation_sum=quality["correlation_sum"],
            top_hits=quality["top_hits"],
        )
        self._quality_pairs = [
            (score, perf) for score, perf in state["quality_pairs"]
        ]
