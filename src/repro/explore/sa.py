"""Simulated-annealing starting-point selection (§5.1, "Heuristic Method").

From the set H of evaluated points, FlexTensor draws the starting points
of the next step with probability proportional to
``exp(-γ (E* - E_p) / E*)`` — points close to the best are likely picks,
but worse points keep a temperature-controlled chance, which is what lets
the search escape local optima of the schedule space.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from ..space import Point


def selection_probabilities(
    performances: Sequence[float], gamma: float
) -> np.ndarray:
    """Normalized pick probabilities for a set of performance values."""
    perfs = np.asarray(performances, dtype=np.float64)
    best = perfs.max() if len(perfs) else 0.0
    if best <= 0.0:
        return np.full(len(perfs), 1.0 / max(len(perfs), 1))
    weights = np.exp(-gamma * (best - perfs) / best)
    return weights / weights.sum()


def select_starting_points(
    evaluated: Dict[Point, float],
    count: int,
    gamma: float,
    rng: np.random.Generator,
) -> List[Point]:
    """Draw ``count`` starting points from H (with replacement when H is
    small, matching "we can also choose more than one starting point")."""
    if not evaluated:
        raise ValueError("cannot select starting points from an empty set")
    points = list(evaluated.keys())
    probs = selection_probabilities([evaluated[p] for p in points], gamma)
    replace = count > len(points)
    idx = rng.choice(len(points), size=count, replace=replace, p=probs)
    return [points[i] for i in idx]
