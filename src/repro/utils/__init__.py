"""Utilities: schedule serialization and replay."""

from .serialization import (
    config_from_dict,
    config_to_dict,
    graph_config_from_dict,
    graph_config_to_dict,
    load_schedule,
    save_schedule,
)

__all__ = [
    "config_from_dict", "config_to_dict", "graph_config_from_dict",
    "graph_config_to_dict", "load_schedule", "save_schedule",
]
