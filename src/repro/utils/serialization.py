"""Serialization of schedule configurations and optimization results.

Tuning is expensive; the artifacts worth keeping are tiny.  These helpers
round-trip :class:`~repro.schedule.NodeConfig` / GraphConfig through plain
JSON-compatible dictionaries so tuned schedules can be stored in a file
("tophub"-style) and replayed later without re-searching.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path
from typing import Dict, Optional, Union

from ..schedule import GraphConfig, NodeConfig


def config_to_dict(config: NodeConfig) -> Dict:
    """A JSON-compatible dictionary for a schedule configuration."""
    payload = asdict(config)
    payload["spatial_factors"] = [list(f) for f in config.spatial_factors]
    payload["reduce_factors"] = [list(f) for f in config.reduce_factors]
    return payload


def config_from_dict(payload: Dict) -> NodeConfig:
    """Inverse of :func:`config_to_dict`."""
    data = dict(payload)
    data["spatial_factors"] = tuple(tuple(f) for f in data["spatial_factors"])
    data["reduce_factors"] = tuple(tuple(f) for f in data.get("reduce_factors", ()))
    return NodeConfig(**data)


def graph_config_to_dict(config: GraphConfig) -> Dict:
    return {"inline": dict(config.inline)}


def graph_config_from_dict(payload: Dict) -> GraphConfig:
    return GraphConfig(inline=dict(payload.get("inline", {})))


def save_schedule(
    path: Union[str, Path],
    config: NodeConfig,
    graph_config: Optional[GraphConfig] = None,
    metadata: Optional[Dict] = None,
) -> None:
    """Write a tuned schedule (plus free-form metadata) to a JSON file."""
    payload = {
        "config": config_to_dict(config),
        "graph_config": graph_config_to_dict(graph_config or GraphConfig()),
        "metadata": metadata or {},
    }
    Path(path).write_text(json.dumps(payload, indent=2))


def load_schedule(path: Union[str, Path]):
    """Read a tuned schedule back: (NodeConfig, GraphConfig, metadata)."""
    payload = json.loads(Path(path).read_text())
    return (
        config_from_dict(payload["config"]),
        graph_config_from_dict(payload.get("graph_config", {})),
        payload.get("metadata", {}),
    )
