"""Deterministic fair-share scheduling and admission control.

The scheduler multiplexes many tenants' tuning jobs over one shared
measurement pool (MetaSchedule-style task scheduling, applied to whole
jobs instead of layers) with two robustness properties:

* **No tenant can starve another.**  Jobs are picked by weighted
  virtual time — each tenant's consumed simulated measurement seconds
  divided by its fair-share weight — so a tenant flooding the queue
  with 100x its quota still only advances its own virtual time and the
  quiet tenant's next job is picked within one slice.  A tenant joining
  mid-run starts at the minimum active virtual time (recorded durably
  on its jobs as ``vtime_floor``), so it is served promptly without
  inheriting unbounded credit.
* **No flood can wedge the queue.**  Admission control rejects before
  work is queued: a global queue-depth bound, a per-tenant cap on
  active (non-terminal) jobs, and a token-bucket rate limit refilled on
  the simulated clock.  Rejections are durable WAL transitions
  (``SUBMITTED -> REJECTED``) with the reason recorded.

Within one tenant, jobs order by priority lane (0 = interactive first)
then submission order.  Virtual time is a *pure function of the job
table* — floors and consumed seconds both live on the WAL-persisted
jobs — so a daemon restarted after ``kill -9`` replays the log and
continues the exact schedule the dead one was executing.  Token
buckets restart full; that is safe because admission outcomes are
themselves durable log transitions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Tuple

from .jobstore import Job, JobState


@dataclass
class TenantPolicy:
    """Per-tenant admission and fair-share parameters."""

    share: float = 1.0        # fair-share weight (2.0 = twice the pool)
    max_active: int = 8       # cap on non-terminal jobs at once
    rate: float = 1.0         # token-bucket refill per simulated second
    burst: float = 8.0        # token-bucket capacity


@dataclass
class ServeConfig:
    """Service-wide configuration (see ``docs/serve.md``)."""

    slice_trials: int = 2          # trials per scheduling slice (preemption grain)
    workers: int = 1               # measurement workers per slice
    max_queue: int = 64            # global bound on active jobs
    max_crashes: int = 3           # poisoned-job quarantine threshold
    default_ttl: Optional[float] = None   # simulated-seconds TTL for new jobs
    tenants: Dict[str, TenantPolicy] = field(default_factory=dict)
    default_policy: TenantPolicy = field(default_factory=TenantPolicy)

    def policy(self, tenant: str) -> TenantPolicy:
        return self.tenants.get(tenant, self.default_policy)


class TokenBucket:
    """Deterministic token bucket on the simulated clock."""

    def __init__(self, rate: float, burst: float, clock: float = 0.0):
        self.rate = float(rate)
        self.burst = float(burst)
        self.tokens = float(burst)
        self.last_clock = float(clock)

    def _refill(self, clock: float) -> None:
        elapsed = max(0.0, clock - self.last_clock)
        self.tokens = min(self.burst, self.tokens + elapsed * self.rate)
        self.last_clock = max(self.last_clock, clock)

    def take(self, clock: float) -> bool:
        """Consume one token if available (refilled up to ``clock``)."""
        self._refill(clock)
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False


class Scheduler:
    """Weighted-virtual-time job picker plus the admission gate."""

    def __init__(self, config: ServeConfig):
        self.config = config
        self._buckets: Dict[str, TokenBucket] = {}

    # -- virtual time (pure function of the job table) ---------------------

    def virtual_times(self, jobs: Iterable[Job]) -> Dict[str, float]:
        """Each tenant's virtual time: its recorded join floor plus its
        consumed simulated seconds over its fair-share weight.  Rejected
        jobs never consumed anything and carry no floor."""
        floors: Dict[str, float] = {}
        consumed: Dict[str, float] = {}
        for job in jobs:
            if job.state is JobState.REJECTED:
                continue
            tenant = job.tenant
            floors[tenant] = max(floors.get(tenant, 0.0), job.vtime_floor)
            share = max(self.config.policy(tenant).share, 1e-9)
            consumed[tenant] = consumed.get(tenant, 0.0) + job.sim_seconds / share
        return {t: floors[t] + consumed[t] for t in floors}

    def join_floor(self, jobs: Iterable[Job], tenant: str) -> float:
        """The virtual-time floor a newly admitted job should carry: the
        tenant's current virtual time if it already has jobs, else the
        minimum over tenants that still have active jobs (0 when idle)."""
        vtimes = self.virtual_times(jobs)
        if tenant in vtimes:
            return 0.0  # floor already established by an earlier job
        active = {job.tenant for job in jobs if not job.terminal}
        candidates = [vt for t, vt in vtimes.items() if t in active]
        return min(candidates, default=0.0)

    # -- admission control -------------------------------------------------

    def admit(
        self, job: Job, active_jobs: int, tenant_active: int, clock: float
    ) -> Tuple[bool, str]:
        """Decide SUBMITTED -> ADMITTED | REJECTED.

        ``active_jobs``/``tenant_active`` count non-terminal jobs
        *excluding* the one being admitted.
        """
        if active_jobs >= self.config.max_queue:
            return False, f"queue full ({active_jobs}/{self.config.max_queue})"
        policy = self.config.policy(job.tenant)
        if tenant_active >= policy.max_active:
            return False, (
                f"tenant quota exceeded ({tenant_active}/{policy.max_active} "
                f"active jobs)"
            )
        if not self._bucket(job.tenant, clock).take(clock):
            return False, f"rate limited ({policy.rate:g}/s, burst {policy.burst:g})"
        return True, ""

    def _bucket(self, tenant: str, clock: float) -> TokenBucket:
        bucket = self._buckets.get(tenant)
        if bucket is None:
            policy = self.config.policy(tenant)
            bucket = TokenBucket(policy.rate, policy.burst, clock)
            self._buckets[tenant] = bucket
        return bucket

    # -- fair-share pick ---------------------------------------------------

    def pick(self, jobs: Iterable[Job]) -> Optional[Job]:
        """The next job to slice, or None when nothing is runnable.

        Tenants order by virtual time; within a tenant, by priority
        lane then submission sequence.  All ties break
        lexicographically — the pick is a deterministic function of the
        job table alone, so a replaying daemon picks identically.
        """
        jobs = list(jobs)
        vtimes = self.virtual_times(jobs)
        best: Optional[Job] = None
        best_key: Optional[Tuple] = None
        for seq, job in enumerate(jobs):
            if not job.runnable:
                continue
            key = (vtimes.get(job.tenant, 0.0), job.tenant, job.priority, seq)
            if best_key is None or key < best_key:
                best, best_key = job, key
        return best

    def stats(self, jobs: Iterable[Job]) -> Dict:
        return {
            "virtual_time": dict(sorted(self.virtual_times(jobs).items())),
            "tokens": {
                tenant: bucket.tokens
                for tenant, bucket in sorted(self._buckets.items())
            },
        }
