"""Multi-tenant tuning service (``docs/serve.md``).

``repro.serve`` turns the measurement substrate of PRs 1–5 into
tuning-as-a-service: many tenants submit tuning jobs against one shared
worker pool, EvalCache and RecordBook, and the service guarantees that
**no crash, overload, or poisoned job can lose work or wedge it**:

* :class:`JobStore` — an append-only JSONL write-ahead log (behind the
  ``runtime/locking.py`` fcntl locks) recording every job state
  transition, so a ``kill -9``'d daemon recovers by replaying the log
  and resuming each in-flight job from its atomic checkpoint.
* :class:`Scheduler` — deterministic per-tenant fair share (virtual
  time over simulated measurement seconds) with priority lanes and
  time-sliced preemption via the PR 1 checkpoint machinery.
* Admission control — bounded queue depth, per-tenant quotas and
  token-bucket rate limits, job TTL expiry, and a poisoned-job policy
  (N crashes of one job quarantine the *job*, never the service).
* A high-QPS read path — ``lookup(op, shape, device)`` answered
  straight from the RecordBook's O(1) indexes, enqueueing a tuning job
  on miss; lookups keep working even when the measurement pool is
  fully broken (degraded mode, mirroring ``cluster_degraded``).

Everything runs on the simulated clock with seeded chaos injection so
tests are deterministic, in the style of ``runtime/cluster.py``.
"""

from .jobstore import Job, JobState, JobStore, TERMINAL_STATES
from .scheduler import Scheduler, ServeConfig, TenantPolicy, TokenBucket
from .service import DaemonKilled, ServeChaos, TuningService

__all__ = [
    "DaemonKilled",
    "Job",
    "JobState",
    "JobStore",
    "Scheduler",
    "ServeChaos",
    "ServeConfig",
    "TERMINAL_STATES",
    "TenantPolicy",
    "TokenBucket",
    "TuningService",
]
