"""The tuning service: WAL-backed job execution, lookups, degradation.

:class:`TuningService` is one daemon process' view of a *store
directory* — the write-ahead job log, one atomic checkpoint file per
job, and the shared :class:`~repro.runtime.EvalCache` and
:class:`~repro.runtime.RecordBook` behind the fcntl locks.  Because
every durable artifact lives in the store, the daemon itself is
stateless: ``kill -9`` it at any instant, construct a new service on
the same directory, and it replays the log, preempts whatever was
mid-flight, and resumes each job from its checkpoint bit-identically
(the crash-recovery contract ``selfcheck --serve`` asserts).

Execution is time-sliced: one :meth:`step` runs one slice
(``slice_trials`` trials) of the fair-share scheduler's pick through
the ordinary ``optimize()`` checkpoint machinery — preempt is
literally "checkpoint + requeue", resume is "restore".  A slice that
raises is a *job* crash: the job is requeued with its crash counter
bumped, and ``max_crashes`` crashes quarantine the job, never the
service (the same policy ``runtime/measure.py`` applies to poisoned
points).  A broken measurement pool degrades the service to
lookups-only, mirroring ``BatchEngine.cluster_degraded``.

Chaos (:class:`ServeChaos`) is deterministic and test-facing, in the
style of ``runtime/fault.py``: scripted daemon kills at slice
boundaries, scripted per-job crash slices, and a pool-breaker switch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from ..model import DEVICES
from ..ops import convolution as _conv
from ..ops import linalg as _linalg
from ..ops.workloads import _BUILDERS
from ..runtime.records import RecordBook, TuningRecord, workload_key
from .jobstore import Job, JobState, JobStore
from .scheduler import Scheduler, ServeConfig

#: Operator registry for job specs: CLI-style names plus every Table 3
#: suite abbreviation from ``ops/workloads.py``.
OPERATORS = {
    "gemm": _linalg.gemm_compute,
    "gemv": _linalg.gemv_compute,
    "conv2d": _conv.conv2d_compute,
    **_BUILDERS,
}

#: File names inside a store directory (beside ``jobs.jsonl``).
RECORDS_FILENAME = "records.jsonl"
EVALCACHE_DIRNAME = "evalcache"


class DaemonKilled(BaseException):
    """Scripted hard kill of the daemon (chaos).

    Derives from ``BaseException`` so no well-meaning ``except
    Exception`` handler inside the service can swallow it — the loop
    dies exactly as ``kill -9`` would, leaving the WAL and checkpoints
    wherever they were.
    """


class JobCrash(RuntimeError):
    """Scripted in-job crash (chaos): poisons the *job*, not the daemon."""


@dataclass
class ServeChaos:
    """Deterministic fault script for the service loop.

    * ``kill_at_slice`` — raise :class:`DaemonKilled` during global
      slice N (0-based), at the nastiest window: after the slice's work
      and checkpoint are durable but *before* the WAL commit, so the
      checkpoint is ahead of the log and recovery must reconcile.
    * ``kill_before_run`` — kill during slice N instead *before* any
      work, right after the RUNNING transition is logged: the WAL shows
      an in-flight job whose slice never happened.
    * ``crash_slices`` — per-job poison script: ``{job_id: (k, ...)}``
      crashes that job's k-th RUNNING slice (0-based, counted per job).
    * ``pool_broken`` — the measurement pool is down; the service
      serves lookups only until it is flipped back.
    """

    kill_at_slice: Optional[int] = None
    kill_before_run: Optional[int] = None
    crash_slices: Dict[str, Tuple[int, ...]] = field(default_factory=dict)
    pool_broken: bool = False


class TuningService:
    """Multi-tenant tuning daemon over one crash-safe store directory."""

    def __init__(
        self,
        store_dir: Union[str, Path],
        config: Optional[ServeConfig] = None,
        chaos: Optional[ServeChaos] = None,
    ):
        self.store = JobStore(store_dir)
        self.config = config or ServeConfig()
        self.scheduler = Scheduler(self.config)
        self.chaos = chaos
        self.records = RecordBook(self.store.store_dir / RECORDS_FILENAME)
        self.cache_dir = self.store.store_dir / EVALCACHE_DIRNAME
        self.clock = self.store.clock
        self.draining = False
        self.slices_run = 0          # global slices this *process* ran
        self.num_lookups = 0
        self.num_lookup_hits = 0
        self.num_lookup_enqueued = 0
        self._last_result = None
        self.recovered_jobs = self._recover()

    # -- recovery ----------------------------------------------------------

    def _recover(self) -> List[str]:
        """Replay cleanup: any job the log shows RUNNING was in flight
        when the previous daemon died.  Preempt it — its checkpoint (and
        possibly a slice of work the WAL never committed) is intact, and
        the next slice reconciles by resuming from the checkpoint."""
        recovered = []
        for job in self.store.jobs.values():
            if job.state is JobState.RUNNING:
                job.recoveries += 1
                self.store.transition(
                    job, JobState.PREEMPTED, self.clock,
                    reason="daemon-crash recovery",
                )
                recovered.append(job.job_id)
        if recovered:
            self.store.note("recover", self.clock, jobs=recovered)
        return recovered

    # -- admission ---------------------------------------------------------

    def submit(
        self,
        tenant: str,
        operator: str,
        params: Dict[str, int],
        device: str,
        trials: int = 8,
        seed: int = 0,
        method: str = "q",
        priority: int = 1,
        ttl_seconds: Optional[float] = None,
    ) -> Job:
        """Submit one tuning job; admission is decided (and logged)
        synchronously.  The returned job is ADMITTED or REJECTED."""
        if operator not in OPERATORS:
            raise ValueError(
                f"unknown operator {operator!r}; expected one of {sorted(OPERATORS)}"
            )
        if device not in DEVICES:
            raise ValueError(f"unknown device {device!r}")
        job = Job(
            job_id=self.store.new_job_id(tenant),
            tenant=tenant,
            operator=operator,
            params=dict(params),
            device=device,
            trials=max(1, int(trials)),
            seed=seed,
            method=method,
            priority=priority,
            ttl_seconds=(
                ttl_seconds if ttl_seconds is not None else self.config.default_ttl
            ),
        )
        # A fresh job id must never inherit an orphaned checkpoint (a
        # corrupt WAL tail can recycle the sequence number).
        leftover = self.store.checkpoint_path(job.job_id)
        if leftover.exists():
            leftover.unlink()
        self.store.submit(job, self.clock)
        if self.draining:
            ok, reason = False, "service draining"
        else:
            ok, reason = self.scheduler.admit(
                job,
                active_jobs=len(self.store.active()) - 1,
                tenant_active=self.store.tenant_active(tenant) - 1,
                clock=self.clock,
            )
        if ok:
            job.vtime_floor = self.scheduler.join_floor(
                [j for j in self.store.jobs.values() if j is not job], tenant
            )
            self.store.transition(job, JobState.ADMITTED, self.clock)
        else:
            self.store.transition(job, JobState.REJECTED, self.clock, reason=reason)
        return job

    def cancel(self, job_id: str, reason: str = "cancelled by user") -> bool:
        """Cancel a queued or preempted job (no-op on terminal jobs)."""
        job = self.store.jobs.get(job_id)
        if job is None or job.terminal or job.state is JobState.RUNNING:
            return False
        self.store.transition(job, JobState.CANCELLED, self.clock, reason=reason)
        return True

    # -- the scheduling loop -----------------------------------------------

    def degraded(self) -> bool:
        """Lookups-only mode: the measurement pool is fully broken."""
        return bool(self.chaos and self.chaos.pool_broken)

    def set_pool_broken(self, broken: bool) -> None:
        """Flip the pool breaker (monitoring hook / tests)."""
        if self.chaos is None:
            self.chaos = ServeChaos()
        self.chaos.pool_broken = bool(broken)

    def advance(self, seconds: float) -> None:
        """Advance the simulated clock without running work (idle time:
        lets TTLs expire and token buckets refill deterministically)."""
        self.clock += max(0.0, float(seconds))
        self._expire()

    def _expire(self) -> None:
        for job in self.store.jobs.values():
            if job.terminal or job.state is JobState.RUNNING:
                continue
            deadline = job.deadline
            if deadline is not None and self.clock > deadline:
                self.store.transition(
                    job, JobState.CANCELLED, self.clock,
                    reason=f"ttl expired ({job.ttl_seconds:g}s)",
                )

    def step(self) -> Optional[str]:
        """Run one scheduling slice; returns the job id sliced, or None
        when idle (nothing runnable, draining, or degraded)."""
        self._expire()
        if self.draining or self.degraded():
            return None
        job = self.scheduler.pick(self.store.jobs.values())
        if job is None:
            return None
        chaos = self.chaos
        slice_index = self.slices_run
        self.slices_run += 1
        self.store.transition(job, JobState.RUNNING, self.clock)
        if chaos and chaos.kill_before_run == slice_index:
            raise DaemonKilled(f"chaos kill before slice {slice_index}")
        try:
            if chaos and (job.slices - 1) in chaos.crash_slices.get(job.job_id, ()):
                raise JobCrash(
                    f"chaos crash in {job.job_id} slice {job.slices - 1}"
                )
            done = self._run_slice(job)
        except DaemonKilled:
            raise
        except Exception as exc:  # a poisoned job must not take the service down
            job.crashes += 1
            if job.crashes >= self.config.max_crashes:
                self.store.transition(
                    job, JobState.QUARANTINED, self.clock,
                    reason=f"quarantined after {job.crashes} crashes: {exc}",
                )
            else:
                self.store.transition(
                    job, JobState.PREEMPTED, self.clock,
                    reason=f"crash {job.crashes}/{self.config.max_crashes}: {exc}",
                )
            return job.job_id
        if chaos and chaos.kill_at_slice == slice_index:
            # The slice's checkpoint and cache lines are durable, the WAL
            # commit below never happens — the kill -9 window recovery
            # must reconcile (checkpoint ahead of the log).
            raise DaemonKilled(f"chaos kill at slice {slice_index} commit")
        if done:
            self.store.transition(job, JobState.DONE, self.clock, reason="completed")
            self._record_best(job)
        else:
            self.store.transition(
                job, JobState.PREEMPTED, self.clock, reason="time slice"
            )
        return job.job_id

    def _run_slice(self, job: Job) -> bool:
        """Run one checkpointed slice of a job; True when it finished.

        ``optimize(resume=True)`` restores the job's checkpoint (if
        any), runs up to ``slice_trials`` further trials, and snapshots
        after every trial — so however the daemon dies, the next slice
        continues from the last durable trial bit-identically."""
        from ..optimize import optimize  # local: avoid an import cycle

        output = OPERATORS[job.operator](**job.params)
        device = DEVICES[job.device]
        target_trials = min(job.trials, job.trials_done + self.config.slice_trials)
        result = optimize(
            output,
            device,
            trials=target_trials,
            seed=job.seed,
            method=job.method,
            checkpoint=self.store.checkpoint_path(job.job_id),
            checkpoint_every=1,
            resume=True,
            workers=self.config.workers,
            cache_dir=str(self.cache_dir),
        )
        slice_seconds = result.tuning.exploration_seconds - job.sim_seconds
        job.trials_done = target_trials
        job.sim_seconds = result.tuning.exploration_seconds
        job.num_measurements = result.tuning.num_measurements
        job.best_gflops = result.gflops
        job.best_point = (
            list(result.tuning.best_point)
            if result.tuning.best_point is not None else None
        )
        self._last_result = result
        self.clock += max(0.0, slice_seconds)
        return job.trials_done >= job.trials

    def _record_best(self, job: Job) -> None:
        """Fold a finished job's best schedule into the shared RecordBook
        (the read path's source of truth)."""
        result = getattr(self, "_last_result", None)
        if result is None or not result.found:
            return
        self.records.add(TuningRecord(
            key=workload_key(job.operator, job.params, job.device),
            config=result.config,
            gflops=result.gflops,
            trials=job.trials,
            seed=job.seed,
            signature=result.evaluator.op_signature(),
        ))

    def run(self, max_slices: Optional[int] = None) -> int:
        """Drive slices until idle (or ``max_slices``); returns the
        number of slices executed by this call."""
        executed = 0
        while max_slices is None or executed < max_slices:
            if self.step() is None:
                break
            executed += 1
        return executed

    # -- the read path -----------------------------------------------------

    def lookup(
        self,
        operator: str,
        params: Dict[str, int],
        device: str,
        tenant: str = "anonymous",
        enqueue: bool = False,
        trials: int = 8,
        seed: int = 0,
    ) -> Optional[TuningRecord]:
        """High-QPS read path: the best known schedule for (op, shape,
        device) straight from the RecordBook's O(1) index, or None on a
        miss (optionally enqueueing a tuning job to fill it).  Works
        even when the pool is broken — reads never touch the pool."""
        self.num_lookups += 1
        record = self.records.best(workload_key(operator, params, device))
        if record is not None:
            self.num_lookup_hits += 1
            return record
        if enqueue and not self.draining:
            job = self.submit(
                tenant, operator, params, device, trials=trials, seed=seed,
                priority=2,  # background lane: misses must not preempt tenants
            )
            if job.state is JobState.ADMITTED:
                self.num_lookup_enqueued += 1
        return None

    def lookup_signature(self, signature: str) -> Optional[TuningRecord]:
        """Best known schedule for a structural operator signature
        (:meth:`Evaluator.op_signature`), from the O(1) signature index."""
        return self.records.best_for_signature(signature)

    # -- drain / shutdown --------------------------------------------------

    def drain(self) -> None:
        """Stop admitting and stop slicing; queued work stays durable.
        Running slices never span a ``drain()`` call (steps are
        synchronous), so every job is already checkpointed."""
        if not self.draining:
            self.draining = True
            self.store.note("drain", self.clock)

    def shutdown(self) -> None:
        """Drain plus a durable shutdown marker (clean-exit evidence)."""
        self.drain()
        self.store.note("shutdown", self.clock)

    # -- reporting ---------------------------------------------------------

    def stats(self) -> Dict:
        jobs = list(self.store.jobs.values())
        by_state: Dict[str, int] = {}
        for job in jobs:
            by_state[job.state.value] = by_state.get(job.state.value, 0) + 1
        waits = [w for j in jobs if (w := j.queue_wait()) is not None]
        return {
            "clock": self.clock,
            "jobs": len(jobs),
            "by_state": dict(sorted(by_state.items())),
            "active": len(self.store.active()),
            "slices_run": self.slices_run,
            "recovered_jobs": list(self.recovered_jobs),
            "degraded": self.degraded(),
            "draining": self.draining,
            "lookups": self.num_lookups,
            "lookup_hits": self.num_lookup_hits,
            "lookup_enqueued": self.num_lookup_enqueued,
            "max_queue_wait": max(waits, default=0.0),
            "records": len(self.records),
            "scheduler": self.scheduler.stats(jobs),
        }

    def status_table(self) -> str:
        """Human-readable per-job table for ``python -m repro status``."""
        lines = [
            f"{'job':<16} {'tenant':<10} {'state':<12} {'trials':>8} "
            f"{'gflops':>8} {'wait':>7}  reason"
        ]
        for job in self.store.jobs.values():
            wait = job.queue_wait()
            lines.append(
                f"{job.job_id:<16} {job.tenant:<10} {job.state.value:<12} "
                f"{job.trials_done:>3}/{job.trials:<4} "
                f"{job.best_gflops:>8.1f} "
                f"{wait if wait is not None else float('nan'):>7.2f}  "
                f"{job.reason}"
            )
        return "\n".join(lines)
