"""Crash-safe job store: an append-only JSONL write-ahead log.

Every job state transition is one fsync'd JSONL line appended under the
``runtime/locking.py`` fcntl lock, so the log is the single source of
truth for the service: a daemon killed at any instant loses at most the
line being appended (which replay then skips, exactly like the
:class:`~repro.runtime.RecordBook` and the EvalCache), and a restarted
daemon rebuilds every job — including the ones that were mid-flight —
by replaying the log front to back.

Each event carries the *full* job record, not a delta, so replay is
last-event-wins per job and tolerates any prefix of lost lines: the job
simply resumes from its previous durable transition, and the PR 1
checkpoint machinery makes re-running the lost slice bit-identical.

The job lifecycle state machine (``docs/serve.md``)::

    SUBMITTED -> ADMITTED | REJECTED
    ADMITTED  -> RUNNING | CANCELLED
    RUNNING   -> PREEMPTED | DONE | FAILED | CANCELLED | QUARANTINED
    PREEMPTED -> RUNNING | CANCELLED | QUARANTINED

``DONE``/``FAILED``/``CANCELLED``/``QUARANTINED``/``REJECTED`` are
terminal.  Illegal transitions raise at *write* time — the log never
records a transition the machine forbids.
"""

from __future__ import annotations

import enum
import json
import os
import warnings
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from ..runtime.locking import locked

#: On-disk format version; bump when the event layout changes.
JOBSTORE_VERSION = 1

#: File name of the write-ahead log inside a store directory.
JOBLOG_FILENAME = "jobs.jsonl"


class JobState(str, enum.Enum):
    """Lifecycle states of a tuning job."""

    SUBMITTED = "submitted"      # recorded, admission not yet decided
    ADMITTED = "admitted"        # passed admission control, queued
    RUNNING = "running"          # a scheduler slice is executing it
    PREEMPTED = "preempted"      # checkpointed and requeued (time slice,
                                 # crash requeue, or daemon-crash recovery)
    DONE = "done"                # completed all trials; best recorded
    FAILED = "failed"            # unrecoverable error (bad spec, ...)
    CANCELLED = "cancelled"      # user cancel or TTL/deadline expiry
    QUARANTINED = "quarantined"  # poisoned: crashed max_crashes times
    REJECTED = "rejected"        # admission control refused it


#: States a job can never leave.
TERMINAL_STATES = frozenset({
    JobState.DONE,
    JobState.FAILED,
    JobState.CANCELLED,
    JobState.QUARANTINED,
    JobState.REJECTED,
})

#: The legal transition relation (see the module docstring).
LEGAL_TRANSITIONS: Dict[JobState, frozenset] = {
    JobState.SUBMITTED: frozenset({JobState.ADMITTED, JobState.REJECTED}),
    JobState.ADMITTED: frozenset({JobState.RUNNING, JobState.CANCELLED}),
    JobState.RUNNING: frozenset({
        JobState.PREEMPTED, JobState.DONE, JobState.FAILED,
        JobState.CANCELLED, JobState.QUARANTINED,
    }),
    JobState.PREEMPTED: frozenset({
        JobState.RUNNING, JobState.CANCELLED, JobState.QUARANTINED,
    }),
}


@dataclass
class Job:
    """One tuning job: spec plus the mutable progress the WAL persists."""

    job_id: str
    tenant: str
    operator: str
    params: Dict[str, int]
    device: str
    trials: int
    seed: int = 0
    method: str = "q"
    priority: int = 1               # 0 = interactive, 1 = batch, 2 = background
    ttl_seconds: Optional[float] = None
    state: JobState = JobState.SUBMITTED
    submit_clock: float = 0.0
    vtime_floor: float = 0.0        # tenant's fair-share floor at admission
    start_clock: Optional[float] = None   # clock of the first RUNNING
    finish_clock: Optional[float] = None  # clock of the terminal transition
    trials_done: int = 0
    slices: int = 0                 # RUNNING transitions so far
    sim_seconds: float = 0.0        # simulated measurement seconds consumed
    crashes: int = 0                # job-level crashes (poison counting)
    recoveries: int = 0             # daemon-crash recoveries (not poison)
    reason: str = ""                # why the last transition happened
    best_gflops: float = 0.0
    best_point: Optional[List[int]] = None
    num_measurements: int = 0

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    @property
    def runnable(self) -> bool:
        """Whether the scheduler may pick this job for a slice."""
        return self.state in (JobState.ADMITTED, JobState.PREEMPTED)

    @property
    def deadline(self) -> Optional[float]:
        if self.ttl_seconds is None:
            return None
        return self.submit_clock + self.ttl_seconds

    def queue_wait(self) -> Optional[float]:
        """Simulated seconds between submission and the first slice."""
        if self.start_clock is None:
            return None
        return self.start_clock - self.submit_clock

    def to_dict(self) -> Dict:
        payload = asdict(self)
        payload["state"] = self.state.value
        return payload

    @classmethod
    def from_dict(cls, payload: Dict) -> "Job":
        payload = dict(payload)
        payload["state"] = JobState(payload["state"])
        payload["params"] = {str(k): int(v) for k, v in payload["params"].items()}
        if payload.get("best_point") is not None:
            payload["best_point"] = [int(x) for x in payload["best_point"]]
        return cls(**payload)


class JobStore:
    """The write-ahead log plus the in-memory job table it materializes.

    ``transition()`` is the only way a job changes state: it validates
    the transition, stamps the event, and appends it fsync'd under the
    fcntl lock *before* the in-memory table is updated — write-ahead in
    the literal sense, so the durable log is never behind what the
    daemon believes.
    """

    def __init__(self, store_dir: Union[str, Path]):
        self.store_dir = Path(store_dir)
        self.store_dir.mkdir(parents=True, exist_ok=True)
        self.jobs: Dict[str, Job] = {}       # insertion = first-seen order
        self.clock = 0.0                     # newest clock seen in the log
        self.next_seq = 1                    # job-id counter (persistent)
        self._events = 0
        self.replay()

    @property
    def path(self) -> Path:
        return self.store_dir / JOBLOG_FILENAME

    def checkpoint_path(self, job_id: str) -> Path:
        """The per-job tuner checkpoint file (atomic JSONL, PR 1)."""
        return self.store_dir / f"job-{job_id}.ckpt"

    # -- write-ahead -------------------------------------------------------

    def new_job_id(self, tenant: str) -> str:
        job_id = f"{tenant}-{self.next_seq:04d}"
        self.next_seq += 1
        return job_id

    def submit(self, job: Job, clock: float) -> None:
        """Record a brand-new job (its SUBMITTED event)."""
        if job.job_id in self.jobs:
            raise ValueError(f"duplicate job id {job.job_id!r}")
        if job.state is not JobState.SUBMITTED:
            raise ValueError(f"new job must be SUBMITTED, got {job.state}")
        job.submit_clock = clock
        self._append_event(job, clock)
        self.jobs[job.job_id] = job

    def transition(
        self, job: Job, state: JobState, clock: float, reason: str = ""
    ) -> None:
        """Validate, log, then apply one state transition."""
        allowed = LEGAL_TRANSITIONS.get(job.state, frozenset())
        if state not in allowed:
            raise ValueError(
                f"illegal job transition {job.state.value} -> {state.value} "
                f"for {job.job_id}"
            )
        job.state = state
        job.reason = reason
        if state is JobState.RUNNING:
            if job.start_clock is None:
                job.start_clock = clock
            job.slices += 1
        if state in TERMINAL_STATES:
            job.finish_clock = clock
        self._append_event(job, clock)

    def note(self, kind: str, clock: float, **payload) -> None:
        """Append a service-level event (drain, shutdown, recover, ...)."""
        self._append_line({
            "v": JOBSTORE_VERSION, "type": "serve-event", "kind": kind,
            "clock": clock, **payload,
        })
        self.clock = max(self.clock, clock)

    def _append_event(self, job: Job, clock: float) -> None:
        self._events += 1
        self._append_line({
            "v": JOBSTORE_VERSION, "type": "job-event", "event": self._events,
            "clock": clock, "job": job.to_dict(),
        })
        self.clock = max(self.clock, clock)

    def _append_line(self, payload: Dict) -> None:
        # Single write + flush + fsync under the flock: the event is on
        # disk whole (or not at all) before the call returns, and writers
        # from separate daemon processes serialize line-at-a-time.
        line = json.dumps(payload)
        with open(self.path, "a") as f, locked(f):
            f.write(line + "\n")
            f.flush()
            os.fsync(f.fileno())

    # -- replay ------------------------------------------------------------

    def replay(self) -> Tuple[Dict[str, Job], float]:
        """Rebuild the job table from the log (last event per job wins).

        Corrupt or truncated lines — the tail a ``kill -9`` can leave —
        are skipped with a warning, mirroring every other JSONL loader
        in the runtime; the affected job falls back to its previous
        durable transition and its checkpoint.
        """
        self.jobs = {}
        self.clock = 0.0
        self._events = 0
        if not self.path.exists():
            return self.jobs, self.clock
        for lineno, line in enumerate(self.path.read_text(errors="replace").splitlines(), 1):
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
                if not isinstance(payload, dict):
                    raise ValueError("non-object line")
                kind = payload.get("type")
                if kind == "serve-event":
                    self.clock = max(self.clock, float(payload.get("clock", 0.0)))
                    continue
                if kind != "job-event":
                    continue  # typed side-channel line from a newer writer
                job = Job.from_dict(payload["job"])
                self.clock = max(self.clock, float(payload.get("clock", 0.0)))
                self._events = max(self._events, int(payload.get("event", 0)))
            except (json.JSONDecodeError, KeyError, TypeError, ValueError):
                warnings.warn(f"skipping corrupt job event at {self.path}:{lineno}")
                continue
            # Reassigning an existing key keeps its original dict position,
            # so the table stays in first-seen (submission) order — the
            # deterministic tie-break the scheduler relies on.
            self.jobs[job.job_id] = job
        self.next_seq = 1 + max(
            (self._seq_of(job_id) for job_id in self.jobs), default=0
        )
        return self.jobs, self.clock

    @staticmethod
    def _seq_of(job_id: str) -> int:
        try:
            return int(job_id.rsplit("-", 1)[1])
        except (IndexError, ValueError):
            return 0

    # -- queries -----------------------------------------------------------

    def by_state(self, *states: JobState) -> List[Job]:
        wanted = set(states)
        return [job for job in self.jobs.values() if job.state in wanted]

    def active(self) -> List[Job]:
        """Jobs that still occupy the queue (non-terminal)."""
        return [job for job in self.jobs.values() if not job.terminal]

    def tenant_active(self, tenant: str) -> int:
        return sum(
            1 for job in self.jobs.values()
            if job.tenant == tenant and not job.terminal
        )

    def __len__(self) -> int:
        return len(self.jobs)
