"""Tensors and the operations that produce them.

A :class:`Tensor` is a symbolic multi-dimensional array with a fixed shape.
It is produced either by a :class:`PlaceholderOp` (an input) or by a
:class:`ComputeOp` (a nested-loop node in the paper's mini-graph, §4.1).
"""

from __future__ import annotations

from typing import Callable, Sequence, Tuple

from .expr import (
    Expr,
    IterVar,
    Reduce,
    SPATIAL,
    TensorRef,
    fresh_name,
    wrap,
)


class Operation:
    """Base class for tensor-producing operations (mini-graph nodes)."""

    name: str

    @property
    def input_tensors(self) -> Tuple["Tensor", ...]:
        """Tensors this operation reads (mini-graph in-edges)."""
        raise NotImplementedError

    @property
    def output(self) -> "Tensor":
        """The tensor this operation produces."""
        raise NotImplementedError


class Tensor:
    """A symbolic dense tensor.

    Indexing a tensor with loop variables produces a :class:`TensorRef`
    expression, so compute bodies read naturally:
    ``C = compute((n, m), lambda i, j: A[i, j] + B[i, j])``.
    """

    __slots__ = ("shape", "name", "dtype", "op")

    def __init__(self, shape: Sequence[int], name: str, dtype: str, op: Operation):
        self.shape = tuple(int(s) for s in shape)
        if any(s <= 0 for s in self.shape):
            raise ValueError(f"tensor {name!r} has non-positive dimension: {self.shape}")
        self.name = name
        self.dtype = dtype
        self.op = op

    @property
    def ndim(self) -> int:
        """Number of dimensions."""
        return len(self.shape)

    @property
    def size(self) -> int:
        """Total number of elements."""
        total = 1
        for s in self.shape:
            total *= s
        return total

    def __getitem__(self, indices) -> TensorRef:
        if not isinstance(indices, tuple):
            indices = (indices,)
        return TensorRef(self, indices)

    def __repr__(self):
        return f"Tensor({self.name}, shape={self.shape}, {self.dtype})"


class PlaceholderOp(Operation):
    """An external input tensor (a leaf node of the mini-graph)."""

    def __init__(self, shape: Sequence[int], name: str, dtype: str):
        self.name = name
        self._output = Tensor(shape, name, dtype, self)

    @property
    def input_tensors(self) -> Tuple[Tensor, ...]:
        """Placeholders read nothing."""
        return ()

    @property
    def output(self) -> Tensor:
        """The tensor this operation produces."""
        return self._output

    def __repr__(self):
        return f"PlaceholderOp({self.name})"


class ComputeOp(Operation):
    """One nested-loop node: ``O[i1..iM] = F(I1, .., IN)`` (§4.1).

    ``axes`` are the spatial loops (one per output dimension) and
    ``reduce_axes`` the reduce loops referenced by a :class:`Reduce` body.
    """

    def __init__(self, shape: Sequence[int], body: Expr, axes: Sequence[IterVar], name: str, dtype: str):
        self.name = name
        self.body = wrap(body)
        self.axes = tuple(axes)
        if len(self.axes) != len(shape):
            raise ValueError("one spatial axis per output dimension is required")
        if isinstance(self.body, Reduce):
            self.reduce_axes = self.body.axes
        else:
            self.reduce_axes = ()
        self._output = Tensor(shape, name, dtype, self)
        self._inputs = _collect_input_tensors(self.body, exclude=self._output)

    @property
    def input_tensors(self) -> Tuple[Tensor, ...]:
        """Distinct tensors read by the body, in first-use order."""
        return self._inputs

    @property
    def output(self) -> Tensor:
        """The tensor this operation produces."""
        return self._output

    @property
    def all_axes(self) -> Tuple[IterVar, ...]:
        """Spatial axes followed by reduce axes."""
        return self.axes + tuple(self.reduce_axes)

    def __repr__(self):
        return f"ComputeOp({self.name}, spatial={len(self.axes)}, reduce={len(self.reduce_axes)})"


def _collect_input_tensors(body: Expr, exclude: Tensor) -> Tuple[Tensor, ...]:
    """Find the distinct tensors read by ``body``, in first-use order."""
    from .visitors import collect_tensor_refs

    seen = []
    for ref in collect_tensor_refs(body):
        tensor = ref.tensor
        if tensor is exclude:
            continue
        if all(tensor is not t for t in seen):
            seen.append(tensor)
    return tuple(seen)


def placeholder(shape: Sequence[int], name: str = None, dtype: str = "float32") -> Tensor:
    """Declare an input tensor of the given shape."""
    if name is None:
        name = fresh_name("data")
    return PlaceholderOp(shape, name, dtype).output


def compute(
    shape: Sequence[int],
    fcompute: Callable[..., Expr],
    name: str = None,
    dtype: str = "float32",
) -> Tensor:
    """Define a tensor point-wise: ``fcompute(i0, .., iM)`` gives element (i0..iM).

    This mirrors TVM's ``te.compute``; ``fcompute`` receives one spatial
    :class:`IterVar` per output dimension and returns the body expression
    (optionally a :class:`Reduce`).
    """
    if name is None:
        name = fresh_name("compute")
    axes = tuple(
        IterVar(extent, f"{name}_i{dim}", SPATIAL) for dim, extent in enumerate(shape)
    )
    body = fcompute(*axes)
    return ComputeOp(shape, body, axes, name, dtype).output


def reduce_axis(extent: int, name: str = None) -> IterVar:
    """Declare a reduction axis of the given extent."""
    if name is None:
        name = fresh_name("r")
    return IterVar(extent, name, kind="reduce")
