"""Scalar evaluation of expressions and affine index analysis.

The evaluator is the semantic ground truth for the whole stack: the loop
nest interpreter (``repro.codegen.interp``), the naive reference executor
and the affine access analysis used by the machine models all reduce to
evaluating these AST nodes with a concrete environment.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from .expr import (
    Add,
    Div,
    And,
    Compare,
    Condition,
    Expr,
    FloatImm,
    FloorDiv,
    IntImm,
    IterVar,
    Max,
    Min,
    Mod,
    Mul,
    Or,
    Reduce,
    Select,
    Sub,
    TensorRef,
    Var,
)


class EvalError(Exception):
    """Raised when an expression cannot be evaluated in the given context."""


def evaluate(expr: Expr, env: Dict, tensors: Optional[Dict] = None):
    """Evaluate ``expr`` given variable bindings and tensor buffers.

    ``env`` maps :class:`Var`/:class:`IterVar` objects (or their names) to
    numbers; ``tensors`` maps :class:`Tensor` objects to numpy arrays.  The
    result is a Python number.
    """
    if isinstance(expr, IntImm):
        return expr.value
    if isinstance(expr, FloatImm):
        return expr.value
    if isinstance(expr, (Var, IterVar)):
        if expr in env:
            return env[expr]
        if expr.name in env:
            return env[expr.name]
        raise EvalError(f"unbound variable {expr.name!r}")
    if isinstance(expr, Add):
        return evaluate(expr.a, env, tensors) + evaluate(expr.b, env, tensors)
    if isinstance(expr, Sub):
        return evaluate(expr.a, env, tensors) - evaluate(expr.b, env, tensors)
    if isinstance(expr, Mul):
        return evaluate(expr.a, env, tensors) * evaluate(expr.b, env, tensors)
    if isinstance(expr, FloorDiv):
        return evaluate(expr.a, env, tensors) // evaluate(expr.b, env, tensors)
    if isinstance(expr, Mod):
        return evaluate(expr.a, env, tensors) % evaluate(expr.b, env, tensors)
    if isinstance(expr, Div):
        return evaluate(expr.a, env, tensors) / evaluate(expr.b, env, tensors)
    if isinstance(expr, Min):
        return min(evaluate(expr.a, env, tensors), evaluate(expr.b, env, tensors))
    if isinstance(expr, Max):
        return max(evaluate(expr.a, env, tensors), evaluate(expr.b, env, tensors))
    if isinstance(expr, Select):
        if evaluate_condition(expr.condition, env, tensors):
            return evaluate(expr.then_value, env, tensors)
        return evaluate(expr.else_value, env, tensors)
    from .unary import Unary

    if isinstance(expr, Unary):
        return expr.apply(evaluate(expr.a, env, tensors))
    if isinstance(expr, TensorRef):
        if tensors is None or expr.tensor not in tensors:
            raise EvalError(f"no buffer bound for tensor {expr.tensor.name!r}")
        idx = tuple(int(evaluate(i, env, tensors)) for i in expr.indices)
        return tensors[expr.tensor][idx]
    if isinstance(expr, Reduce):
        raise EvalError("Reduce nodes must be handled by the loop interpreter")
    raise EvalError(f"unknown expression node {expr!r}")


def evaluate_condition(cond: Condition, env: Dict, tensors: Optional[Dict] = None) -> bool:
    """Evaluate a boolean condition under the environment."""
    if isinstance(cond, Compare):
        a = evaluate(cond.a, env, tensors)
        b = evaluate(cond.b, env, tensors)
        return {
            "<": a < b,
            "<=": a <= b,
            ">": a > b,
            ">=": a >= b,
            "==": a == b,
            "!=": a != b,
        }[cond.op]
    if isinstance(cond, And):
        return evaluate_condition(cond.a, env, tensors) and evaluate_condition(cond.b, env, tensors)
    if isinstance(cond, Or):
        return evaluate_condition(cond.a, env, tensors) or evaluate_condition(cond.b, env, tensors)
    raise EvalError(f"unknown condition node {cond!r}")


def affine_coefficients(index: Expr, variables: Sequence[IterVar]) -> Optional[List[int]]:
    """Coefficients ``[c1..cn, c0]`` if ``index == c0 + sum(ci * vi)``.

    Returns ``None`` when the index is not affine in ``variables`` (e.g. it
    uses division or modulo on them).  Detection is by numeric probing: the
    constant is the value at the origin, each coefficient is the unit-step
    delta, and a combined probe rejects non-affine expressions.
    """
    from .visitors import collect_iter_vars

    variables = list(variables)
    # Variables of the expression that are not being probed are pinned to 0
    # so partial probes (e.g. stride of one axis) still evaluate.
    zero_env = {v: 0 for v in collect_iter_vars(index)}
    zero_env.update({v: 0 for v in variables})
    try:
        constant = evaluate(index, zero_env)
        coefficients = []
        for var in variables:
            env = dict(zero_env)
            env[var] = 1
            coefficients.append(evaluate(index, env) - constant)
        # Verification probe: all variables at 2 simultaneously.
        env = dict(zero_env)
        env.update({v: 2 for v in variables})
        predicted = constant + 2 * sum(coefficients)
        if evaluate(index, env) != predicted:
            return None
        # Second probe with distinct values to catch cross terms.
        env = dict(zero_env)
        env.update({v: i + 1 for i, v in enumerate(variables)})
        predicted = constant + sum(c * (i + 1) for i, c in enumerate(coefficients))
        if evaluate(index, env) != predicted:
            return None
        # Far probe at each variable's extent boundary: catches modulo and
        # flooring that look linear near the origin.
        far = {v: max(getattr(v, "extent", 8) - 1, 3) for v in variables}
        env = dict(zero_env)
        env.update(far)
        predicted = constant + sum(c * far[v] for v, c in zip(variables, coefficients))
        if evaluate(index, env) != predicted:
            return None
    except EvalError:
        return None
    return coefficients + [constant]


def stride_of(index_exprs: Sequence[Expr], shape: Sequence[int], var: IterVar) -> Optional[int]:
    """Flat-memory stride of ``var`` in a row-major access ``T[index_exprs]``.

    Returns ``None`` if any index is non-affine in ``var``; returns 0 when
    the variable does not appear (a reuse dimension).
    """
    stride = 0
    row_major = 1
    for dim in range(len(shape) - 1, -1, -1):
        coeffs = affine_coefficients(index_exprs[dim], [var])
        if coeffs is None:
            return None
        stride += coeffs[0] * row_major
        row_major *= shape[dim]
    return stride
