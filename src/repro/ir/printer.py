"""Human-readable printing of expressions and compute definitions."""

from __future__ import annotations

from .expr import (
    Add,
    And,
    BinaryOp,
    Compare,
    Condition,
    Expr,
    FloatImm,
    FloorDiv,
    IntImm,
    IterVar,
    Max,
    Min,
    Mod,
    Mul,
    Or,
    Reduce,
    Select,
    Sub,
    TensorRef,
    Var,
)
from .tensor import ComputeOp, PlaceholderOp, Tensor


def format_expr(expr: Expr) -> str:
    """Render an expression as compact, math-like text."""
    if isinstance(expr, IntImm):
        return str(expr.value)
    if isinstance(expr, FloatImm):
        return repr(expr.value)
    if isinstance(expr, (Var, IterVar)):
        return expr.name
    from .unary import Unary

    if isinstance(expr, Unary):
        return f"{expr.fn}({format_expr(expr.a)})"
    if isinstance(expr, Min):
        return f"min({format_expr(expr.a)}, {format_expr(expr.b)})"
    if isinstance(expr, Max):
        return f"max({format_expr(expr.a)}, {format_expr(expr.b)})"
    if isinstance(expr, BinaryOp):
        return f"({format_expr(expr.a)} {expr.symbol} {format_expr(expr.b)})"
    if isinstance(expr, TensorRef):
        indices = ", ".join(format_expr(i) for i in expr.indices)
        return f"{expr.tensor.name}[{indices}]"
    if isinstance(expr, Reduce):
        axes = ", ".join(f"{a.name}:{a.extent}" for a in expr.axes)
        return f"{expr.combiner}[{axes}]({format_expr(expr.body)})"
    if isinstance(expr, Select):
        return (
            f"select({format_condition(expr.condition)}, "
            f"{format_expr(expr.then_value)}, {format_expr(expr.else_value)})"
        )
    raise TypeError(f"unknown expression node {expr!r}")


def format_condition(cond: Condition) -> str:
    """Render a boolean condition as readable text."""
    if isinstance(cond, Compare):
        return f"{format_expr(cond.a)} {cond.op} {format_expr(cond.b)}"
    if isinstance(cond, And):
        return f"({format_condition(cond.a)} and {format_condition(cond.b)})"
    if isinstance(cond, Or):
        return f"({format_condition(cond.a)} or {format_condition(cond.b)})"
    raise TypeError(f"unknown condition node {cond!r}")


def format_operation(op) -> str:
    """Render a compute definition as pseudo-code nested loops."""
    if isinstance(op, PlaceholderOp):
        return f"placeholder {op.name}{list(op.output.shape)}"
    if not isinstance(op, ComputeOp):
        raise TypeError(f"unknown operation {op!r}")
    lines = []
    indent = ""
    for axis in op.axes:
        lines.append(f"{indent}for {axis.name} in range({axis.extent}):  # spatial")
        indent += "  "
    for axis in op.reduce_axes:
        lines.append(f"{indent}for {axis.name} in range({axis.extent}):  # reduce")
        indent += "  "
    out_idx = ", ".join(a.name for a in op.axes)
    body = op.body.body if isinstance(op.body, Reduce) else op.body
    combine = "+=" if isinstance(op.body, Reduce) else "="
    lines.append(f"{indent}{op.name}[{out_idx}] {combine} {format_expr(body)}")
    return "\n".join(lines)


def format_tensor(tensor: Tensor) -> str:
    """Render a tensor signature: name, dtype, shape."""
    return f"{tensor.name}: {tensor.dtype}{list(tensor.shape)}"
