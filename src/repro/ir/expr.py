"""Expression AST for the tensor-expression IR.

This is the substrate that replaces TVM's tensor-expression language in the
FlexTensor reproduction.  Expressions are immutable trees built from
integer/float immediates, loop variables, arithmetic operators, tensor
element reads and reductions.  The schedule layer never rewrites these
trees; it only rearranges the loop nests that iterate them, so the AST can
stay small and simple.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Tuple

_counter = itertools.count()


def fresh_name(prefix: str) -> str:
    """Return a unique name with the given prefix (e.g. ``i.3``)."""
    return f"{prefix}.{next(_counter)}"


class Expr:
    """Base class of all expression nodes.

    Arithmetic operators are overloaded so compute definitions read like
    plain math, e.g. ``A[i, k] * B[k, j]``.
    """

    __slots__ = ()

    def __add__(self, other):
        return Add(self, wrap(other))

    def __radd__(self, other):
        return Add(wrap(other), self)

    def __sub__(self, other):
        return Sub(self, wrap(other))

    def __rsub__(self, other):
        return Sub(wrap(other), self)

    def __mul__(self, other):
        return Mul(self, wrap(other))

    def __rmul__(self, other):
        return Mul(wrap(other), self)

    def __floordiv__(self, other):
        return FloorDiv(self, wrap(other))

    def __rfloordiv__(self, other):
        return FloorDiv(wrap(other), self)

    def __mod__(self, other):
        return Mod(self, wrap(other))

    def __rmod__(self, other):
        return Mod(wrap(other), self)

    def __truediv__(self, other):
        return Div(self, wrap(other))

    def __rtruediv__(self, other):
        return Div(wrap(other), self)

    def __neg__(self):
        return Sub(IntImm(0), self)

    # Expressions are compared by identity by default; structural equality
    # is provided by ``repro.ir.visitors.same_structure`` where needed.


def wrap(value) -> Expr:
    """Coerce a Python number into an immediate expression node."""
    if isinstance(value, Expr):
        return value
    if isinstance(value, bool):
        raise TypeError("boolean values are not valid tensor expressions")
    if isinstance(value, int):
        return IntImm(value)
    if isinstance(value, float):
        return FloatImm(value)
    raise TypeError(f"cannot use {type(value).__name__} in a tensor expression")


class IntImm(Expr):
    """Integer immediate."""

    __slots__ = ("value",)

    def __init__(self, value: int):
        self.value = int(value)

    def __repr__(self):
        return f"IntImm({self.value})"


class FloatImm(Expr):
    """Floating-point immediate."""

    __slots__ = ("value",)

    def __init__(self, value: float):
        self.value = float(value)

    def __repr__(self):
        return f"FloatImm({self.value})"


class Var(Expr):
    """A named scalar variable (loop index)."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def __repr__(self):
        return f"Var({self.name})"


SPATIAL = "spatial"
REDUCE = "reduce"


class IterVar(Expr):
    """An iteration variable with a known extent.

    ``kind`` distinguishes spatial loops (parallelizable, one per output
    dimension) from reduce loops (carry a dependence; §4.1 of the paper).
    An :class:`IterVar` may be used directly inside index expressions.
    """

    __slots__ = ("name", "extent", "kind")

    def __init__(self, extent: int, name: str, kind: str = SPATIAL):
        if kind not in (SPATIAL, REDUCE):
            raise ValueError(f"unknown iter-var kind: {kind!r}")
        if extent <= 0:
            raise ValueError(f"iter var {name!r} must have positive extent, got {extent}")
        self.name = name
        self.extent = int(extent)
        self.kind = kind

    @property
    def is_reduce(self) -> bool:
        """True for reduction axes (data-dependent loops)."""
        return self.kind == REDUCE

    def __repr__(self):
        return f"IterVar({self.name}, extent={self.extent}, {self.kind})"


class BinaryOp(Expr):
    """Base for binary arithmetic nodes."""

    __slots__ = ("a", "b")
    symbol = "?"

    def __init__(self, a: Expr, b: Expr):
        self.a = wrap(a)
        self.b = wrap(b)

    def __repr__(self):
        return f"({self.a!r} {self.symbol} {self.b!r})"


class Add(BinaryOp):
    """Elementwise/scalar addition."""
    __slots__ = ()
    symbol = "+"


class Sub(BinaryOp):
    """Subtraction."""
    __slots__ = ()
    symbol = "-"


class Mul(BinaryOp):
    """Multiplication."""
    __slots__ = ()
    symbol = "*"


class FloorDiv(BinaryOp):
    """Integer (flooring) division — index arithmetic."""
    __slots__ = ()
    symbol = "//"


class Mod(BinaryOp):
    """Integer modulo — index arithmetic."""
    __slots__ = ()
    symbol = "%"


class Div(BinaryOp):
    """True (floating-point) division — for normalization epilogues."""

    __slots__ = ()
    symbol = "/"


class Min(BinaryOp):
    """Elementwise minimum."""
    __slots__ = ()
    symbol = "min"


class Max(BinaryOp):
    """Elementwise maximum (also the rectifier's core)."""
    __slots__ = ()
    symbol = "max"


class Select(Expr):
    """``condition ? then_value : else_value`` — used for padding regions."""

    __slots__ = ("condition", "then_value", "else_value")

    def __init__(self, condition: "Condition", then_value, else_value):
        self.condition = condition
        self.then_value = wrap(then_value)
        self.else_value = wrap(else_value)

    def __repr__(self):
        return f"Select({self.condition!r}, {self.then_value!r}, {self.else_value!r})"


class Condition:
    """A boolean combination of integer comparisons.

    Kept separate from :class:`Expr` so that conditions can only appear
    inside :class:`Select`, which keeps lowering straightforward.
    """

    __slots__ = ()

    def __and__(self, other):
        return And(self, other)

    def __or__(self, other):
        return Or(self, other)


class Compare(Condition):
    """An integer comparison (one of < <= > >= == !=)."""
    __slots__ = ("op", "a", "b")
    _OPS = ("<", "<=", ">", ">=", "==", "!=")

    def __init__(self, op: str, a, b):
        if op not in self._OPS:
            raise ValueError(f"unknown comparison {op!r}")
        self.op = op
        self.a = wrap(a)
        self.b = wrap(b)

    def __repr__(self):
        return f"Compare({self.a!r} {self.op} {self.b!r})"


class And(Condition):
    """Logical conjunction of two conditions."""
    __slots__ = ("a", "b")

    def __init__(self, a: Condition, b: Condition):
        self.a = a
        self.b = b

    def __repr__(self):
        return f"And({self.a!r}, {self.b!r})"


class Or(Condition):
    """Logical disjunction of two conditions."""
    __slots__ = ("a", "b")

    def __init__(self, a: Condition, b: Condition):
        self.a = a
        self.b = b

    def __repr__(self):
        return f"Or({self.a!r}, {self.b!r})"


def all_of(conditions: Iterable[Condition]) -> Condition:
    """Conjunction of one or more conditions."""
    conditions = list(conditions)
    if not conditions:
        raise ValueError("all_of requires at least one condition")
    result = conditions[0]
    for cond in conditions[1:]:
        result = And(result, cond)
    return result


class TensorRef(Expr):
    """An element read ``tensor[i0, i1, ...]``."""

    __slots__ = ("tensor", "indices")

    def __init__(self, tensor, indices: Tuple[Expr, ...]):
        self.tensor = tensor
        self.indices = tuple(wrap(i) for i in indices)
        if len(self.indices) != len(tensor.shape):
            raise ValueError(
                f"tensor {tensor.name!r} has {len(tensor.shape)} dims, "
                f"indexed with {len(self.indices)}"
            )

    def __repr__(self):
        idx = ", ".join(repr(i) for i in self.indices)
        return f"{self.tensor.name}[{idx}]"


SUM_COMBINER = "sum"
MAX_COMBINER = "max"


class Reduce(Expr):
    """A reduction of ``body`` over ``axes`` with a named combiner.

    Only appears at the top of a compute body (like TVM's ``te.sum``).
    """

    __slots__ = ("combiner", "body", "axes")

    def __init__(self, combiner: str, body: Expr, axes):
        if combiner not in (SUM_COMBINER, MAX_COMBINER):
            raise ValueError(f"unknown combiner {combiner!r}")
        axes = tuple(axes)
        if not axes:
            raise ValueError("reduction must have at least one axis")
        for axis in axes:
            if not isinstance(axis, IterVar) or not axis.is_reduce:
                raise ValueError(f"reduction axis {axis!r} must be a reduce IterVar")
        self.combiner = combiner
        self.body = wrap(body)
        self.axes = axes

    @property
    def identity(self) -> float:
        """The combiner's identity element (0 for sum, -inf for max)."""
        return 0.0 if self.combiner == SUM_COMBINER else float("-inf")

    def __repr__(self):
        names = ", ".join(a.name for a in self.axes)
        return f"Reduce({self.combiner}, {self.body!r}, axes=[{names}])"
