"""Algebraic simplification of index expressions.

Lowering builds index reconstructions mechanically (``((i0*4 + i1)*1 +
0)``...), so the generated kernels are full of no-op arithmetic.  This
pass performs the standard local rewrites — constant folding, additive and
multiplicative identities, multiplication re-association with constants —
and is verified by property tests to preserve the value of every
expression on random environments.

Only integer-valued index arithmetic is targeted; floating-point bodies
are left untouched except for trivial identities (no re-association of
float math, which could change rounding).
"""

from __future__ import annotations

from .expr import (
    Add,
    BinaryOp,
    Div,
    Expr,
    FloatImm,
    FloorDiv,
    IntImm,
    Max,
    Min,
    Mod,
    Mul,
    Select,
    Sub,
    TensorRef,
)
from .unary import Unary


def _const(expr) -> bool:
    return isinstance(expr, IntImm)


def simplify(expr: Expr) -> Expr:
    """Return an equivalent, syntactically smaller expression."""
    if isinstance(expr, TensorRef):
        return TensorRef(expr.tensor, tuple(simplify(i) for i in expr.indices))
    if isinstance(expr, Unary):
        return Unary(expr.fn, simplify(expr.a))
    if isinstance(expr, Select):
        return Select(expr.condition, simplify(expr.then_value), simplify(expr.else_value))
    if not isinstance(expr, BinaryOp):
        return expr

    a = simplify(expr.a)
    b = simplify(expr.b)

    if isinstance(expr, Add):
        return _simplify_add(a, b)
    if isinstance(expr, Sub):
        if _const(b) and b.value == 0:
            return a
        if _const(a) and _const(b):
            return IntImm(a.value - b.value)
        return Sub(a, b)
    if isinstance(expr, Mul):
        return _simplify_mul(a, b)
    if isinstance(expr, FloorDiv):
        if _const(b):
            if b.value == 1:
                return a
            if _const(a):
                return IntImm(a.value // b.value)
        return FloorDiv(a, b)
    if isinstance(expr, Mod):
        if _const(b):
            if b.value == 1:
                return IntImm(0)
            if _const(a):
                return IntImm(a.value % b.value)
        return Mod(a, b)
    if isinstance(expr, Min) and _const(a) and _const(b):
        return IntImm(min(a.value, b.value))
    if isinstance(expr, Max) and _const(a) and _const(b):
        return IntImm(max(a.value, b.value))
    if isinstance(expr, Div):
        return Div(a, b)  # float division: fold nothing
    return type(expr)(a, b)


def _simplify_add(a: Expr, b: Expr) -> Expr:
    if _const(a) and a.value == 0:
        return b
    if _const(b) and b.value == 0:
        return a
    if _const(a) and _const(b):
        return IntImm(a.value + b.value)
    # (x + c1) + c2 -> x + (c1 + c2)
    if isinstance(a, Add) and _const(a.b) and _const(b):
        return _simplify_add(a.a, IntImm(a.b.value + b.value))
    return Add(a, b)


def _simplify_mul(a: Expr, b: Expr) -> Expr:
    for first, second in ((a, b), (b, a)):
        if _const(first):
            if first.value == 0:
                return IntImm(0)
            if first.value == 1:
                return second
    if _const(a) and _const(b):
        return IntImm(a.value * b.value)
    # (x * c1) * c2 -> x * (c1 * c2)
    if isinstance(a, Mul) and _const(a.b) and _const(b):
        return _simplify_mul(a.a, IntImm(a.b.value * b.value))
    if isinstance(b, Mul) and _const(b.b) and _const(a):
        return _simplify_mul(b.a, IntImm(b.b.value * a.value))
    return Mul(a, b)


def node_count(expr: Expr) -> int:
    """Number of AST nodes — the metric simplification shrinks."""
    from .visitors import walk

    return sum(1 for _ in walk(expr))
