"""Unary math nodes: exp, log, sqrt, tanh, and the rectifier.

These extend the expression AST beyond Table 1's multiply-accumulate
operators so that softmax / normalization-style graphs (chains of
reduce nodes and elementwise epilogues) can be expressed and scheduled.
Kept in a separate module so the core AST stays the paper's minimal set.
"""

from __future__ import annotations

import math

from .expr import Expr, Max, wrap

_FUNCTIONS = {
    "exp": math.exp,
    "log": math.log,
    "sqrt": math.sqrt,
    "tanh": math.tanh,
}


class Unary(Expr):
    """A named elementwise function applied to one operand."""

    __slots__ = ("fn", "a")

    def __init__(self, fn: str, a):
        if fn not in _FUNCTIONS:
            raise ValueError(f"unknown unary function {fn!r}; have {sorted(_FUNCTIONS)}")
        self.fn = fn
        self.a = wrap(a)

    def apply(self, value: float) -> float:
        return _FUNCTIONS[self.fn](value)

    def __repr__(self):
        return f"{self.fn}({self.a!r})"


def exp(a) -> Unary:
    """Elementwise e**a."""
    return Unary("exp", a)


def log(a) -> Unary:
    """Elementwise natural logarithm."""
    return Unary("log", a)


def sqrt(a) -> Unary:
    """Elementwise square root."""
    return Unary("sqrt", a)


def tanh(a) -> Unary:
    """Elementwise hyperbolic tangent."""
    return Unary("tanh", a)


def relu(a) -> Expr:
    """``max(a, 0)`` — expressed with the existing Max node."""
    return Max(wrap(a), wrap(0.0))
