"""Tensor-expression IR: the substrate under the FlexTensor reproduction.

Public surface mirrors the small core of TVM's tensor-expression language
that FlexTensor relies on: ``placeholder``, ``compute``, ``reduce_axis`` and
the ``Reduce`` combinators, plus expression utilities.
"""

from .expr import (
    Add,
    Div,
    And,
    BinaryOp,
    Compare,
    Condition,
    Expr,
    FloatImm,
    FloorDiv,
    IntImm,
    IterVar,
    Max,
    Min,
    Mod,
    Mul,
    Or,
    Reduce,
    REDUCE,
    SPATIAL,
    Select,
    Sub,
    TensorRef,
    Var,
    all_of,
    fresh_name,
    wrap,
)
from .tensor import ComputeOp, Operation, PlaceholderOp, Tensor, compute, placeholder, reduce_axis
from .unary import Unary, exp, log, relu, sqrt, tanh
from .simplify import node_count, simplify
from .evalexpr import EvalError, affine_coefficients, evaluate, evaluate_condition, stride_of
from .printer import format_condition, format_expr, format_operation, format_tensor
from .visitors import (
    collect_iter_vars,
    collect_tensor_refs,
    count_flops_per_point,
    same_structure,
    walk,
)


def sum_reduce(body, axes) -> Reduce:
    """Sum ``body`` over the given reduce axes (TVM's ``te.sum``)."""
    if isinstance(axes, IterVar):
        axes = (axes,)
    return Reduce("sum", body, axes)


def max_reduce(body, axes) -> Reduce:
    """Max-reduce ``body`` over the given reduce axes."""
    if isinstance(axes, IterVar):
        axes = (axes,)
    return Reduce("max", body, axes)


__all__ = [
    "Add", "And", "BinaryOp", "Compare", "Condition", "ComputeOp", "EvalError",
    "Div", "Expr", "FloatImm", "FloorDiv", "IntImm", "IterVar", "Max", "Min", "Mod",
    "Mul", "Operation", "Or", "PlaceholderOp", "REDUCE", "Reduce", "SPATIAL",
    "Select", "Sub", "Tensor", "TensorRef", "Var", "affine_coefficients",
    "all_of", "collect_iter_vars", "collect_tensor_refs", "compute",
    "count_flops_per_point", "evaluate", "evaluate_condition", "format_condition",
    "format_expr", "format_operation", "format_tensor", "fresh_name",
    "max_reduce", "placeholder", "reduce_axis", "same_structure", "stride_of",
    "sum_reduce", "walk", "wrap",
    "Unary", "exp", "log", "node_count", "relu", "simplify", "sqrt", "tanh",
]
