"""Traversal utilities over the expression AST."""

from __future__ import annotations

from typing import Callable, Iterator, List, Set

from .expr import (
    And,
    BinaryOp,
    Compare,
    Condition,
    Expr,
    FloatImm,
    IntImm,
    IterVar,
    Or,
    Reduce,
    Select,
    TensorRef,
    Var,
)


def walk(expr: Expr) -> Iterator[Expr]:
    """Yield every expression node in ``expr``, pre-order."""
    stack: List[Expr] = [expr]
    while stack:
        node = stack.pop()
        yield node
        stack.extend(reversed(_children(node)))  # left-to-right pre-order


def _children(node) -> List[Expr]:
    from .unary import Unary

    if isinstance(node, BinaryOp):
        return [node.a, node.b]
    if isinstance(node, Unary):
        return [node.a]
    if isinstance(node, Reduce):
        return [node.body]
    if isinstance(node, TensorRef):
        return list(node.indices)
    if isinstance(node, Select):
        return _condition_exprs(node.condition) + [node.then_value, node.else_value]
    return []


def _condition_exprs(cond: Condition) -> List[Expr]:
    if isinstance(cond, Compare):
        return [cond.a, cond.b]
    if isinstance(cond, (And, Or)):
        return _condition_exprs(cond.a) + _condition_exprs(cond.b)
    raise TypeError(f"unknown condition node {cond!r}")


def collect_tensor_refs(expr: Expr) -> List[TensorRef]:
    """All tensor-element reads in ``expr``, in traversal order."""
    return [node for node in walk(expr) if isinstance(node, TensorRef)]


def collect_iter_vars(expr: Expr) -> List[IterVar]:
    """Distinct iteration variables used in ``expr``, first-use order."""
    seen: List[IterVar] = []
    for node in walk(expr):
        if isinstance(node, IterVar) and all(node is not v for v in seen):
            seen.append(node)
    return seen


def count_flops_per_point(expr: Expr) -> int:
    """Arithmetic operations needed to produce one output point *per
    reduction iteration* (multiply-add counts as 2, matching the paper's
    FLOPs accounting).

    Only value-level arithmetic counts: index expressions inside tensor
    reads and select conditions are address computation, not FLOPs.
    """

    from .unary import Unary

    def value_ops(node) -> int:
        if isinstance(node, TensorRef):
            return 0  # indices are address arithmetic
        if isinstance(node, Select):
            return value_ops(node.then_value) + value_ops(node.else_value)
        if isinstance(node, BinaryOp):
            return 1 + value_ops(node.a) + value_ops(node.b)
        if isinstance(node, Unary):
            return 1 + value_ops(node.a)  # one transcendental op
        return 0

    body = expr.body if isinstance(expr, Reduce) else expr
    ops = value_ops(body)
    if isinstance(expr, Reduce):
        ops += 1  # the combining add/max itself
    return max(ops, 1)


def same_structure(a: Expr, b: Expr) -> bool:
    """Structural equality of two expressions (identity for leaves that
    carry identity, like tensors and iter vars)."""
    if type(a) is not type(b):
        return False
    if isinstance(a, IntImm):
        return a.value == b.value
    if isinstance(a, FloatImm):
        return a.value == b.value
    if isinstance(a, (Var, IterVar)):
        return a is b
    if isinstance(a, BinaryOp):
        return same_structure(a.a, b.a) and same_structure(a.b, b.b)
    if isinstance(a, TensorRef):
        return a.tensor is b.tensor and all(
            same_structure(x, y) for x, y in zip(a.indices, b.indices)
        )
    from .unary import Unary

    if isinstance(a, Unary):
        return a.fn == b.fn and same_structure(a.a, b.a)
    if isinstance(a, Reduce):
        return (
            a.combiner == b.combiner
            and a.axes == b.axes
            and same_structure(a.body, b.body)
        )
    if isinstance(a, Select):
        return (
            _same_condition(a.condition, b.condition)
            and same_structure(a.then_value, b.then_value)
            and same_structure(a.else_value, b.else_value)
        )
    raise TypeError(f"unknown expression node {a!r}")


def _same_condition(a: Condition, b: Condition) -> bool:
    if type(a) is not type(b):
        return False
    if isinstance(a, Compare):
        return a.op == b.op and same_structure(a.a, b.a) and same_structure(a.b, b.b)
    return _same_condition(a.a, b.a) and _same_condition(a.b, b.b)
